"""Bulk ingestion: ``observe_many`` must be bit-identical to the loop.

The contract under test is the one the whole chunked path rests on: for
every mechanism and oracle, ingesting a span through
:meth:`StreamSession.observe_many` performs the same RNG draws in the
same order as the equivalent :meth:`observe` loop — releases, truth
rows, records, counters, accountant state and any attached store all
end up byte-for-byte equal, for any chunking of the horizon.
"""

import numpy as np
import pytest

from repro.engine import SessionGroup, StreamSession, run_stream
from repro.exceptions import InvalidParameterError
from repro.query import ReleaseStore
from repro.streams import MaterializedStream, OnlineStream, TaxiSimulator

ALL_MECHANISMS = ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA")
#: All built-ins now carry a chunk kernel; the adaptive ones get the
#: deeper per-oracle matrix in tests/mechanisms/test_adaptive_kernels.py.
KERNEL_MECHANISMS = ALL_MECHANISMS

HORIZON = 42
WINDOW = 5


def _dataset(seed=5, horizon=HORIZON, n_users=1500, domain=6):
    values = np.random.default_rng(seed).integers(
        0, domain, size=(horizon, n_users)
    )
    return MaterializedStream(values, domain_size=domain)


def _run_looped(mechanism, dataset, **kwargs):
    session = StreamSession(
        mechanism, dataset, 1.0, WINDOW, seed=11, **kwargs
    ).start()
    for t in range(HORIZON):
        session.observe(t)
    return session


def _run_chunked(mechanism, dataset, chunks, **kwargs):
    session = StreamSession(
        mechanism, dataset, 1.0, WINDOW, seed=11, **kwargs
    ).start()
    t = 0
    for chunk in chunks:
        t += len(session.observe_many(t, chunk))
    while t < HORIZON:
        t += len(session.observe_many(t, 7))
    return session


def assert_sessions_identical(a, b):
    assert np.array_equal(a.releases, b.releases)
    assert np.array_equal(a.true_frequencies, b.true_frequencies)
    assert a.total_reports == b.total_reports
    assert a.max_window_spend == b.max_window_spend
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.t == rb.t
        assert ra.strategy == rb.strategy
        assert ra.reports == rb.reports
        assert np.array_equal(ra.release, rb.release)


class TestBitIdentity:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_chunked_matches_loop(self, mechanism):
        # Chunks deliberately misaligned with the w=5 window so spans
        # cross publication / re-release / nullification boundaries.
        looped = _run_looped(mechanism, _dataset())
        chunked = _run_chunked(mechanism, _dataset(), chunks=[1, 13, 4, 7])
        assert_sessions_identical(looped.finalize(), chunked.finalize())

    @pytest.mark.parametrize("mechanism", KERNEL_MECHANISMS)
    @pytest.mark.parametrize("oracle", ("grr", "oue", "sue", "olh", "hr"))
    def test_kernel_matches_loop_per_oracle(self, mechanism, oracle):
        looped = _run_looped(mechanism, _dataset(), oracle=oracle)
        chunked = _run_chunked(
            mechanism, _dataset(), chunks=[13], oracle=oracle
        )
        assert_sessions_identical(looped.finalize(), chunked.finalize())

    @pytest.mark.parametrize("mechanism", ("LBU", "LSP", "LPU", "LBA"))
    def test_chunk_of_one_equals_observe(self, mechanism):
        looped = _run_looped(mechanism, _dataset())
        chunked = _run_chunked(
            mechanism, _dataset(), chunks=[1] * HORIZON
        )
        assert_sessions_identical(looped.finalize(), chunked.finalize())

    def test_single_chunk_spans_whole_horizon(self):
        looped = _run_looped("LPU", _dataset())
        chunked = _run_chunked("LPU", _dataset(), chunks=[HORIZON])
        assert_sessions_identical(looped.finalize(), chunked.finalize())

    @pytest.mark.parametrize("mechanism", ("LBU", "LSP", "LPU", "LBD"))
    def test_generative_stream_chunked(self, mechanism):
        looped = _run_looped(
            mechanism, TaxiSimulator(n_users=1200, horizon=HORIZON, seed=3)
        )
        chunked = _run_chunked(
            mechanism,
            TaxiSimulator(n_users=1200, horizon=HORIZON, seed=3),
            chunks=[9, 17],
        )
        assert_sessions_identical(looped.finalize(), chunked.finalize())

    @pytest.mark.parametrize("mechanism", ("LSP", "LBA"))
    def test_attached_store_identical(self, mechanism):
        a = StreamSession(
            mechanism, _dataset(), 1.0, WINDOW, seed=2, store=ReleaseStore(6)
        ).start()
        for t in range(HORIZON):
            a.observe(t)
        b = StreamSession(
            mechanism, _dataset(), 1.0, WINDOW, seed=2, store=ReleaseStore(6)
        ).start()
        b.observe_many(0, HORIZON)
        assert len(a.store) == len(b.store)
        for t in range(HORIZON):
            ra, va = a.store.release_at(t), a.store.variance_at(t)
            rb, vb = b.store.release_at(t), b.store.variance_at(t)
            assert np.array_equal(ra, rb)
            assert va == vb

    def test_trace_free_summaries_identical(self):
        a = StreamSession(
            "LPU", _dataset(), 1.0, WINDOW, seed=2, record_trace=False
        ).start()
        for t in range(HORIZON):
            a.observe(t)
        b = StreamSession(
            "LPU", _dataset(), 1.0, WINDOW, seed=2, record_trace=False
        ).start()
        b.observe_many(0, HORIZON)
        assert a.summary() == b.summary()

    def test_mixing_observe_and_observe_many(self):
        looped = _run_looped("LBU", _dataset())
        mixed = StreamSession("LBU", _dataset(), 1.0, WINDOW, seed=11).start()
        mixed.observe(0)
        mixed.observe_many(1, 20)
        mixed.observe(21)
        mixed.observe_many(22, HORIZON - 22)
        assert_sessions_identical(looped.finalize(), mixed.finalize())

    def test_online_stream_chunked(self):
        rng = np.random.default_rng(7)
        snapshots = rng.integers(0, 4, size=(24, 300))
        a = StreamSession(
            "LBU", OnlineStream(300, 4, retain=8), 1.0, WINDOW, seed=1
        ).start()
        for row in snapshots:
            t = a.dataset.push(row)
            a.observe(t)
        b = StreamSession(
            "LBU", OnlineStream(300, 4, retain=8), 1.0, WINDOW, seed=1
        ).start()
        for start in range(0, 24, 8):
            for row in snapshots[start : start + 8]:
                b.dataset.push(row)
            b.observe_many(start, 8)
        assert_sessions_identical(a.finalize(), b.finalize())


class TestRunStreamChunk:
    def test_default_chunk_matches_chunk_one(self):
        a = run_stream("LPD", _dataset(), 1.0, WINDOW, seed=4)
        b = run_stream("LPD", _dataset(), 1.0, WINDOW, seed=4, chunk=1)
        assert_sessions_identical(a, b)

    def test_explicit_chunk_matches(self):
        a = run_stream("LBU", _dataset(), 1.0, WINDOW, seed=4, chunk=13)
        b = run_stream("LBU", _dataset(), 1.0, WINDOW, seed=4, chunk=1)
        assert_sessions_identical(a, b)

    def test_invalid_chunk_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_stream("LBU", _dataset(), 1.0, WINDOW, seed=4, chunk=0)


class TestEdges:
    def test_chunk_clamped_to_horizon(self):
        session = StreamSession(
            "LBU", _dataset(), 1.0, WINDOW, seed=0, horizon=10
        ).start()
        records = session.observe_many(0, 999)
        assert len(records) == 10
        assert session.steps_observed == 10

    def test_chunk_clamped_to_dataset_horizon(self):
        session = StreamSession("LSP", _dataset(), 1.0, WINDOW, seed=0).start()
        assert len(session.observe_many(0, HORIZON + 50)) == HORIZON

    def test_default_n_fills_horizon(self):
        session = StreamSession(
            "LBU", _dataset(), 1.0, WINDOW, seed=0, horizon=12
        ).start()
        assert len(session.observe_many()) == 12

    def test_at_horizon_raises(self):
        session = StreamSession(
            "LBU", _dataset(), 1.0, WINDOW, seed=0, horizon=10
        ).start()
        session.observe_many(0, 10)
        with pytest.raises(InvalidParameterError):
            session.observe_many(10, 1)

    def test_zero_chunk_is_noop(self):
        session = StreamSession("LBU", _dataset(), 1.0, WINDOW, seed=0).start()
        assert session.observe_many(0, 0) == []
        assert session.steps_observed == 0

    def test_out_of_order_chunk_rejected(self):
        session = StreamSession("LBU", _dataset(), 1.0, WINDOW, seed=0).start()
        session.observe_many(0, 5)
        with pytest.raises(InvalidParameterError):
            session.observe_many(3, 5)

    def test_requires_start(self):
        session = StreamSession("LBU", _dataset(), 1.0, WINDOW, seed=0)
        with pytest.raises(InvalidParameterError):
            session.observe_many(0, 5)

    def test_unbounded_session_requires_n(self):
        session = StreamSession(
            "LBU", OnlineStream(100, 4), 1.0, WINDOW, seed=0
        ).start()
        with pytest.raises(InvalidParameterError):
            session.observe_many()

    def test_truth_block_shape_checked(self):
        session = StreamSession("LBU", _dataset(), 1.0, WINDOW, seed=0).start()
        with pytest.raises(InvalidParameterError):
            session.observe_many(0, 5, true_frequencies=np.zeros((4, 6)))


class TestSessionGroupChunked:
    def test_group_matches_solo_with_mixed_horizons(self):
        # truth_chunk=8 never divides either horizon, so the group's
        # chunked fan-out clips spans per session at block boundaries.
        group = SessionGroup(_dataset(), truth_chunk=8)
        group.add_session("LBU", 1.0, WINDOW, seed=21, horizon=13)
        group.add_session("LPD", 1.5, WINDOW, seed=22)
        short, full = group.run()
        solo_short = StreamSession(
            "LBU", _dataset(), 1.0, WINDOW, seed=21, horizon=13
        ).start()
        solo_short.observe_many(0, 13)
        solo_full = StreamSession(
            "LPD", _dataset(), 1.5, WINDOW, seed=22
        ).start()
        for t in range(HORIZON):
            solo_full.observe(t)
        assert_sessions_identical(short, solo_short.finalize())
        assert_sessions_identical(full, solo_full.finalize())
