"""Unit tests for the user pool (population-division substrate)."""

import numpy as np
import pytest

from repro.engine import UserPool
from repro.exceptions import InvalidParameterError, PopulationExhaustedError


class TestSampling:
    def test_samples_are_distinct(self):
        pool = UserPool(100, seed=1)
        ids = pool.sample(50)
        assert len(np.unique(ids)) == 50

    def test_samples_are_disjoint_across_calls(self):
        pool = UserPool(100, seed=1)
        a = pool.sample(40)
        b = pool.sample(40)
        assert len(np.intersect1d(a, b)) == 0

    def test_availability_decreases(self):
        pool = UserPool(100, seed=1)
        pool.sample(30)
        assert pool.n_available == 70

    def test_zero_sample_is_empty(self):
        pool = UserPool(10, seed=1)
        out = pool.sample(0)
        assert out.size == 0
        assert pool.n_available == 10

    def test_exhaustion_raises(self):
        pool = UserPool(10, seed=1)
        pool.sample(8)
        with pytest.raises(PopulationExhaustedError):
            pool.sample(3)

    def test_negative_sample_rejected(self):
        pool = UserPool(10, seed=1)
        with pytest.raises(InvalidParameterError):
            pool.sample(-1)

    def test_sampling_is_uniform(self):
        """Each user is roughly equally likely to be drawn first."""
        hits = np.zeros(20)
        for seed in range(2_000):
            pool = UserPool(20, seed=seed)
            hits[pool.sample(1)[0]] += 1
        assert hits.std() / hits.mean() < 0.15


class TestRecycling:
    def test_recycle_restores_availability(self):
        pool = UserPool(50, seed=2)
        ids = pool.sample(20)
        pool.recycle(ids)
        assert pool.n_available == 50

    def test_recycled_users_can_be_resampled(self):
        pool = UserPool(10, seed=2)
        ids = pool.sample(10)
        pool.recycle(ids)
        again = pool.sample(10)
        assert len(np.unique(again)) == 10

    def test_double_recycle_rejected(self):
        pool = UserPool(10, seed=2)
        ids = pool.sample(5)
        pool.recycle(ids)
        with pytest.raises(InvalidParameterError):
            pool.recycle(ids)

    def test_recycle_never_sampled_rejected(self):
        pool = UserPool(10, seed=2)
        with pytest.raises(InvalidParameterError):
            pool.recycle(np.array([3]))

    def test_recycle_empty_is_noop(self):
        pool = UserPool(10, seed=2)
        pool.recycle(np.empty(0, dtype=np.int64))
        assert pool.n_available == 10

    def test_out_of_range_rejected(self):
        pool = UserPool(10, seed=2)
        with pytest.raises(InvalidParameterError):
            pool.recycle(np.array([99]))


class TestAvailability:
    def test_is_available_tracks_state(self):
        pool = UserPool(5, seed=3)
        ids = pool.sample(5)
        for uid in ids:
            assert not pool.is_available(int(uid))
        pool.recycle(ids[:2])
        assert pool.is_available(int(ids[0]))
        assert pool.is_available(int(ids[1]))

    def test_invalid_constructor(self):
        with pytest.raises(InvalidParameterError):
            UserPool(0)
