"""Unit tests for step/session result records."""

import numpy as np
import pytest

from repro.engine import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    SessionResult,
    StepRecord,
)


def make_result(horizon=10, n_users=100, total_reports=500, strategies=None):
    strategies = strategies or [STRATEGY_PUBLISH] * horizon
    records = [
        StepRecord(t=t, release=np.zeros(2), strategy=strategies[t])
        for t in range(horizon)
    ]
    return SessionResult(
        mechanism="X",
        oracle="grr",
        epsilon=1.0,
        window=5,
        n_users=n_users,
        domain_size=2,
        releases=np.zeros((horizon, 2)),
        true_frequencies=np.full((horizon, 2), 0.5),
        records=records,
        total_reports=total_reports,
    )


class TestSessionResult:
    def test_cfpu(self):
        result = make_result(horizon=10, n_users=100, total_reports=500)
        assert result.cfpu == pytest.approx(0.5)

    def test_publication_count(self):
        strategies = [STRATEGY_PUBLISH] * 3 + [STRATEGY_APPROXIMATE] * 7
        result = make_result(strategies=strategies)
        assert result.publication_count == 3
        assert result.publication_rate == pytest.approx(0.3)

    def test_horizon(self):
        assert make_result(horizon=7).horizon == 7

    def test_errors_shape_and_value(self):
        result = make_result()
        errors = result.errors()
        assert errors.shape == (10, 2)
        assert np.allclose(errors, -0.5)

    def test_steprecord_defaults(self):
        record = StepRecord(t=0, release=np.zeros(3), strategy=STRATEGY_APPROXIMATE)
        assert record.publication_epsilon == 0.0
        assert record.reports == 0
        assert np.isnan(record.dis)
        assert np.isnan(record.err)
