"""Unit tests for the session driver."""

import numpy as np
import pytest

from repro.engine import run_stream
from repro.exceptions import InvalidParameterError
from repro.streams import TaxiSimulator


class TestRunStream:
    def test_result_shapes(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        horizon = small_binary_stream.horizon
        assert result.releases.shape == (horizon, 2)
        assert result.true_frequencies.shape == (horizon, 2)
        assert len(result.records) == horizon

    def test_metadata(self, small_binary_stream):
        result = run_stream(
            "LPU", small_binary_stream, epsilon=2.0, window=4, oracle="oue", seed=0
        )
        assert result.mechanism == "LPU"
        assert result.oracle == "oue"
        assert result.epsilon == 2.0
        assert result.window == 4
        assert result.n_users == small_binary_stream.n_users

    def test_horizon_override(self, small_binary_stream):
        result = run_stream(
            "LBU", small_binary_stream, epsilon=1.0, window=5, horizon=10, seed=0
        )
        assert result.horizon == 10

    def test_horizon_required_for_unbounded(self):
        stream = TaxiSimulator(n_users=200, horizon=None, seed=0)
        with pytest.raises(InvalidParameterError):
            run_stream("LBU", stream, epsilon=1.0, window=5, seed=0)
        result = run_stream(
            "LBU", stream, epsilon=1.0, window=5, horizon=8, seed=0
        )
        assert result.horizon == 8

    def test_seed_reproducibility(self, small_binary_stream):
        a = run_stream("LPA", small_binary_stream, epsilon=1.0, window=5, seed=99)
        b = run_stream("LPA", small_binary_stream, epsilon=1.0, window=5, seed=99)
        assert np.array_equal(a.releases, b.releases)
        assert a.total_reports == b.total_reports

    def test_different_seeds_differ(self, small_binary_stream):
        a = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=1)
        b = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=2)
        assert not np.array_equal(a.releases, b.releases)

    def test_postprocess_applied(self, small_binary_stream):
        result = run_stream(
            "LBU",
            small_binary_stream,
            epsilon=0.5,
            window=10,
            seed=0,
            postprocess="norm_sub",
        )
        assert (result.releases >= 0).all()
        assert np.allclose(result.releases.sum(axis=1), 1.0)

    def test_slow_path_runs(self, constant_stream):
        result = run_stream(
            "LBU", constant_stream, epsilon=1.0, window=5, seed=0, fast=False
        )
        assert result.horizon == constant_stream.horizon

    def test_invalid_horizon(self, small_binary_stream):
        with pytest.raises(InvalidParameterError):
            run_stream(
                "LBU", small_binary_stream, epsilon=1.0, window=5, horizon=0, seed=0
            )

    def test_max_window_spend_recorded(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert 0 < result.max_window_spend <= 1.0 + 1e-9

    def test_mechanism_instance_accepted(self, small_binary_stream):
        from repro.mechanisms import LSP

        result = run_stream(
            LSP(offset=3), small_binary_stream, epsilon=1.0, window=5, seed=0
        )
        publish_ts = [
            r.t for r in result.records if r.strategy == "publish"
        ]
        assert all(t % 5 == 3 for t in publish_ts)
