"""SoA scheduler conformance: bit-identity with solo runs at every
chunk size, on random-access and sequential streams, through mid-pass
checkpoints, with the fused and generic bucket paths both exercised."""

import numpy as np
import pytest

from repro.engine import SessionGroup, run_stream, soa_supported
from repro.exceptions import InvalidParameterError
from repro.streams import TaxiSimulator, make_sin

# The seven core mechanisms plus the LPF extension (no chunk kernel —
# exercises the SoA per-step fallback lane on random-access streams).
MECHANISMS = ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA", "LPF")
ORACLES = ("grr", "oue", "sue", "olh", "hr")

N_USERS = 300
HORIZON = 15


def _dataset():
    return make_sin(horizon=HORIZON, n_users=N_USERS, seed=9)


def _grid_group(dataset, *, oracle=None, chunk=16, soa=True,
                mechanisms=MECHANISMS):
    group = SessionGroup(dataset, truth_chunk=chunk, soa=soa)
    for i, mech in enumerate(mechanisms):
        g_oracle = oracle if oracle is not None else ORACLES[i % len(ORACLES)]
        group.add_session(
            mech,
            0.8 + 0.2 * i,
            4,
            oracle=g_oracle,
            seed=50 + i,
            postprocess="clip" if i % 2 else "none",
        )
    return group


def assert_results_identical(a, b):
    assert len(a.releases) == len(b.releases)
    for x, y in zip(a.releases, b.releases):
        assert np.array_equal(x, y)
    for x, y in zip(a.true_frequencies, b.true_frequencies):
        assert np.array_equal(x, y)
    assert a.total_reports == b.total_reports
    assert [r.strategy for r in a.records] == [r.strategy for r in b.records]


class TestSoloBitIdentity:
    """The ISSUE's conformance matrix: mechanisms × oracles × chunks."""

    @pytest.mark.parametrize("oracle", ORACLES)
    @pytest.mark.parametrize("chunk", (1, 5, 16, 64))
    def test_soa_matches_solo(self, oracle, chunk):
        dataset = _dataset()
        group = _grid_group(dataset, oracle=oracle, chunk=chunk)
        results = group.run()
        for i, mech in enumerate(MECHANISMS):
            solo = run_stream(
                mech,
                dataset,
                epsilon=0.8 + 0.2 * i,
                window=4,
                oracle=oracle,
                seed=50 + i,
                postprocess="clip" if i % 2 else "none",
            )
            assert_results_identical(results[i], solo)

    def test_fused_bucket_matches_solo_many_epsilons(self):
        # Same mechanism family + oracle at many budgets: one stacked
        # call drives the whole bucket.
        dataset = _dataset()
        group = SessionGroup(dataset, truth_chunk=8, soa=True)
        epsilons = (0.5, 1.0, 2.0, 4.0)
        for j, eps in enumerate(epsilons):
            group.add_session("LBU", eps, 5, oracle="oue", seed=70 + j)
        results = group.run()
        for j, eps in enumerate(epsilons):
            solo = run_stream(
                "LBU", dataset, epsilon=eps, window=5,
                oracle="oue", seed=70 + j,
            )
            assert_results_identical(results[j], solo)

    def test_sequential_stream_soa_matches_legacy(self):
        def run(soa):
            dataset = TaxiSimulator(
                n_users=N_USERS, horizon=HORIZON, domain_size=10, seed=3
            )
            # LPF has no chunk kernel: sequential streams can't take it
            # through SoA, so restrict to the seven kernel mechanisms.
            group = _grid_group(
                dataset, chunk=7, soa=soa, mechanisms=MECHANISMS[:-1]
            )
            return group.run()

        for a, b in zip(run(True), run(False)):
            assert_results_identical(a, b)

    def test_mixed_horizons_match_solo(self):
        dataset = _dataset()
        group = SessionGroup(dataset, truth_chunk=6, soa=True)
        horizons = (HORIZON, 11, 7)
        for j, h in enumerate(horizons):
            group.add_session(
                "LBU", 1.0, 4, oracle="sue", seed=80 + j, horizon=h
            )
        results = group.run()
        for j, h in enumerate(horizons):
            solo = run_stream(
                "LBU", dataset, epsilon=1.0, window=4,
                horizon=h, oracle="sue", seed=80 + j,
            )
            assert_results_identical(results[j], solo)


class TestSnapshotThroughSoA:
    def test_mid_pass_snapshot_restore_non_aligned(self):
        dataset = _dataset()
        group = _grid_group(dataset, chunk=6, soa=True)
        reference = _grid_group(_dataset(), chunk=6, soa=True).run()
        group.start_pass()
        group.advance_to(7)  # not a chunk boundary
        payload = group.snapshot()
        restored = SessionGroup.restore(payload, _dataset())
        assert restored.soa is True
        restored.advance_to(restored.steps)
        for a, b in zip(restored.finalize_all(), reference):
            assert_results_identical(a, b)

    def test_pre_soa_payload_defaults_to_auto(self):
        dataset = _dataset()
        group = _grid_group(dataset, chunk=6, soa="auto")
        group.start_pass()
        group.advance_to(5)
        payload = group.snapshot()
        del payload["soa"]
        restored = SessionGroup.restore(payload, _dataset())
        assert restored.soa == "auto"


class TestConfiguration:
    def test_truth_chunk_rejects_float(self):
        with pytest.raises(InvalidParameterError, match="integer"):
            SessionGroup(_dataset(), truth_chunk=0.5)

    def test_truth_chunk_rejects_zero_and_negative(self):
        for bad in (0, -3):
            with pytest.raises(InvalidParameterError, match=">= 1"):
                SessionGroup(_dataset(), truth_chunk=bad)

    def test_soa_validated(self):
        with pytest.raises(InvalidParameterError, match="soa"):
            SessionGroup(_dataset(), soa="yes")

    def test_soa_true_unsupported_raises(self):
        dataset = TaxiSimulator(
            n_users=100, horizon=6, domain_size=5, seed=1
        )
        group = SessionGroup(dataset, soa=True)
        group.add_session("LPF", 1.0, 3, oracle="grr", seed=1)
        group.start_pass()
        with pytest.raises(InvalidParameterError, match="chunk kernel"):
            group.advance_to(6)

    def test_soa_supported_predicate(self):
        sequential = TaxiSimulator(
            n_users=100, horizon=6, domain_size=5, seed=1
        )
        assert not soa_supported([], sequential)
        group = SessionGroup(sequential, soa=False)
        kernel = group.add_session("LBU", 1.0, 3, oracle="grr", seed=1)
        assert soa_supported([kernel], sequential)
        fallback = group.add_session("LPF", 1.0, 3, oracle="grr", seed=2)
        assert not soa_supported([kernel, fallback], sequential)
        assert soa_supported([kernel, fallback], _dataset())

    def test_repro_soa_env_disables_auto(self, monkeypatch):
        def run(env):
            if env is None:
                monkeypatch.delenv("REPRO_SOA", raising=False)
            else:
                monkeypatch.setenv("REPRO_SOA", env)
            group = _grid_group(_dataset(), chunk=6, soa="auto")
            assert group._use_soa() is (env != "0")
            return group.run()

        for a, b in zip(run("0"), run(None)):
            assert_results_identical(a, b)

    def test_repro_soa_env_does_not_override_explicit_true(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SOA", "0")
        group = _grid_group(_dataset(), chunk=6, soa=True)
        assert group._use_soa() is True


class TestStores:
    def test_store_contents_identical_to_legacy(self):
        def run(soa):
            group = _grid_group(_dataset(), chunk=9, soa=soa)
            group.attach_stores()
            group.run()
            return [s.store for s in group.sessions]

        for a, b in zip(run(True), run(False)):
            sa, sb = a.state_dict(), b.state_dict()
            assert repr(sa) == repr(sb)
