"""Tests for the incremental StreamSession and the SessionGroup engine.

The load-bearing property is *solo equivalence*: a session advanced
incrementally — alone or inside a shared-pass group — must be
bit-identical to the historical monolithic ``run_stream`` loop at the
same seed.
"""

import numpy as np
import pytest

from repro.engine import SessionGroup, StreamSession, run_stream
from repro.exceptions import InvalidParameterError
from repro.streams import OnlineStream, TaxiSimulator, make_lns

ALL_MECHANISMS = ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA")


def assert_sessions_identical(a, b):
    assert a.mechanism == b.mechanism
    assert np.array_equal(a.releases, b.releases)
    assert np.array_equal(a.true_frequencies, b.true_frequencies)
    assert a.total_reports == b.total_reports
    assert a.max_window_spend == b.max_window_spend
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.strategy == rb.strategy
        assert ra.reports == rb.reports


class TestStreamSessionLifecycle:
    def test_incremental_matches_run_stream(self, small_binary_stream):
        solo = run_stream(
            "LBD", small_binary_stream, epsilon=1.0, window=5, seed=9
        )
        session = StreamSession(
            "LBD", small_binary_stream, 1.0, 5, seed=9
        ).start()
        for t in range(small_binary_stream.horizon):
            session.observe(t)
        assert_sessions_identical(solo, session.finalize())

    def test_observe_requires_start(self, small_binary_stream):
        session = StreamSession("LBU", small_binary_stream, 1.0, 5, seed=0)
        with pytest.raises(InvalidParameterError):
            session.observe(0)

    def test_double_start_rejected(self, small_binary_stream):
        session = StreamSession("LBU", small_binary_stream, 1.0, 5, seed=0)
        session.start()
        with pytest.raises(InvalidParameterError):
            session.start()

    def test_out_of_order_observe_rejected(self, small_binary_stream):
        session = StreamSession(
            "LBU", small_binary_stream, 1.0, 5, seed=0
        ).start()
        session.observe(0)
        with pytest.raises(InvalidParameterError):
            session.observe(2)
        with pytest.raises(InvalidParameterError):
            session.observe(0)

    def test_observe_defaults_to_next_timestamp(self, small_binary_stream):
        session = StreamSession(
            "LBU", small_binary_stream, 1.0, 5, seed=0
        ).start()
        assert session.observe().t == 0
        assert session.observe().t == 1
        assert session.steps_observed == 2

    def test_horizon_enforced(self, small_binary_stream):
        session = StreamSession(
            "LBU", small_binary_stream, 1.0, 5, horizon=2, seed=0
        ).start()
        session.observe(0)
        session.observe(1)
        with pytest.raises(InvalidParameterError):
            session.observe(2)

    def test_finalize_is_terminal(self, small_binary_stream):
        session = StreamSession(
            "LBU", small_binary_stream, 1.0, 5, seed=0
        ).start()
        session.observe(0)
        session.finalize()
        with pytest.raises(InvalidParameterError):
            session.observe(1)
        with pytest.raises(InvalidParameterError):
            session.finalize()

    def test_partial_finalize_shapes(self, small_binary_stream):
        session = StreamSession(
            "LBU", small_binary_stream, 1.0, 5, seed=0
        ).start()
        for t in range(3):
            session.observe(t)
        result = session.finalize()
        assert result.horizon == 3
        assert result.releases.shape == (3, small_binary_stream.domain_size)

    def test_trace_free_session(self, small_binary_stream):
        session = StreamSession(
            "LPA", small_binary_stream, 1.0, 5, seed=0, record_trace=False
        ).start()
        for t in range(small_binary_stream.horizon):
            session.observe(t)
        summary = session.summary()
        assert summary["steps"] == small_binary_stream.horizon
        assert summary["max_window_spend"] <= 1.0 + 1e-9
        assert 0.0 <= summary["publication_rate"] <= 1.0
        with pytest.raises(InvalidParameterError):
            session.finalize()

    def test_running_counters_match_result(self, small_binary_stream):
        session = StreamSession(
            "LBD", small_binary_stream, 1.0, 5, seed=3
        ).start()
        for t in range(small_binary_stream.horizon):
            session.observe(t)
        publications = session.publication_count
        reports = session.total_reports
        result = session.finalize()
        assert result.publication_count == publications
        assert result.total_reports == reports


class TestSessionGroup:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_bit_identical_to_solo_materialized(self, mechanism):
        dataset = make_lns(n_users=400, horizon=20, seed=5)
        solo = run_stream(mechanism, dataset, epsilon=1.0, window=5, seed=42)
        group = SessionGroup(dataset)
        group.add_session(mechanism, 1.0, 5, seed=42)
        assert_sessions_identical(solo, group.run()[0])

    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_bit_identical_to_solo_generative(self, mechanism):
        solo_ds = TaxiSimulator(n_users=300, horizon=15, seed=7)
        solo = run_stream(mechanism, solo_ds, epsilon=1.0, window=5, seed=42)
        group_ds = TaxiSimulator(n_users=300, horizon=15, seed=7)
        group = SessionGroup(group_ds)
        group.add_session(mechanism, 1.0, 5, seed=42)
        assert_sessions_identical(solo, group.run()[0])

    def test_many_sessions_share_one_pass(self):
        dataset = TaxiSimulator(n_users=300, horizon=15, seed=7)
        solos = {}
        for mechanism in ("LBU", "LPD"):
            for epsilon in (0.5, 1.0):
                dataset.reset()
                solos[(mechanism, epsilon)] = run_stream(
                    mechanism, dataset, epsilon=epsilon, window=5, seed=11
                )
        group = SessionGroup(dataset)
        keys = list(solos)
        for mechanism, epsilon in keys:
            group.add_session(mechanism, epsilon, 5, seed=11)
        for key, result in zip(keys, group.run()):
            assert_sessions_identical(solos[key], result)

    def test_mixed_horizons(self):
        dataset = make_lns(n_users=300, horizon=20, seed=2)
        solo_short = run_stream(
            "LBU", dataset, epsilon=1.0, window=5, seed=1, horizon=8
        )
        solo_long = run_stream("LPU", dataset, epsilon=1.0, window=5, seed=1)
        group = SessionGroup(dataset)
        group.add_session("LBU", 1.0, 5, seed=1, horizon=8)
        group.add_session("LPU", 1.0, 5, seed=1)
        short, long = group.run()
        assert short.horizon == 8
        assert long.horizon == 20
        assert_sessions_identical(solo_short, short)
        assert_sessions_identical(solo_long, long)

    def test_oracle_and_postprocess_respected(self):
        dataset = make_lns(n_users=300, horizon=12, seed=2)
        solo = run_stream(
            "LPU",
            dataset,
            epsilon=1.0,
            window=4,
            seed=3,
            oracle="oue",
            postprocess="norm_sub",
        )
        group = SessionGroup(dataset)
        group.add_session(
            "LPU", 1.0, 4, seed=3, oracle="oue", postprocess="norm_sub"
        )
        assert_sessions_identical(solo, group.run()[0])

    def test_unbounded_stream_needs_horizon(self):
        dataset = TaxiSimulator(n_users=200, horizon=None, seed=0)
        group = SessionGroup(dataset)
        with pytest.raises(InvalidParameterError):
            group.add_session("LBU", 1.0, 5, seed=0)
        group.add_session("LBU", 1.0, 5, seed=0, horizon=6)
        assert group.run()[0].horizon == 6

    def test_run_is_single_shot(self):
        dataset = make_lns(n_users=200, horizon=10, seed=2)
        group = SessionGroup(dataset)
        group.add_session("LBU", 1.0, 5, seed=1)
        group.run()
        with pytest.raises(InvalidParameterError):
            group.run()
        with pytest.raises(InvalidParameterError):
            group.add_session("LBU", 1.0, 5, seed=2)

    def test_empty_group_runs(self):
        assert SessionGroup(make_lns(n_users=50, horizon=5, seed=0)).run() == []


class TestOnlineSession:
    def test_session_over_pushed_snapshots(self):
        reference = make_lns(n_users=200, horizon=10, seed=4)
        solo = run_stream("LBD", reference, epsilon=1.0, window=4, seed=8)
        online = OnlineStream(
            n_users=200, domain_size=reference.domain_size
        )
        session = StreamSession("LBD", online, 1.0, 4, seed=8).start()
        for t in range(10):
            online.push(reference.values(t))
            session.observe(t)
        assert_sessions_identical(solo, session.finalize())

    def test_constant_memory_ingestion(self):
        online = OnlineStream(n_users=100, domain_size=3, retain=2)
        session = StreamSession(
            "LBU", online, 1.0, 5, seed=0, record_trace=False
        ).start()
        rng = np.random.default_rng(0)
        for t in range(50):
            online.push(rng.integers(0, 3, size=100))
            session.observe(t)
        assert len(online._snapshots) <= 2
        assert session.steps_observed == 50
