"""Tests for the full-evaluation campaign runner."""

import pytest

from repro.experiments import ARTIFACTS, run_campaign
from repro.experiments.campaign import run_campaign as run_campaign_direct


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One tiny campaign, shared by all assertions in this module."""
    out = tmp_path_factory.mktemp("campaign")
    results = run_campaign(
        output_dir=out, size="smoke", repeats=1, seed=1, verbose=False
    )
    return out, results


class TestCampaign:
    def test_all_artifacts_produced(self, campaign):
        out, results = campaign
        for name in ARTIFACTS:
            assert name in results
            assert (out / f"{name}.txt").exists(), f"missing {name}.txt"

    def test_csv_series_written(self, campaign):
        out, _ = campaign
        # ROC curves and table2 are text-only; the figures get CSVs.
        for name in ("fig4", "fig5", "fig8"):
            csv_path = out / f"{name}.csv"
            assert csv_path.exists()
            header = csv_path.read_text().splitlines()[0]
            assert header == "panel,method,x,value"

    def test_fig4_artifact_contains_all_methods(self, campaign):
        out, _ = campaign
        text = (out / "fig4.txt").read_text()
        for method in ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"):
            assert method in text

    def test_table2_artifact_has_paper_reference(self, campaign):
        out, _ = campaign
        text = (out / "table2.txt").read_text()
        assert "/" in text  # measured/paper format
        assert "eps=2, w=40" in text

    def test_elapsed_recorded(self, campaign):
        _, results = campaign
        assert results["elapsed_seconds"] > 0

    def test_no_output_dir_is_fine(self):
        results = run_campaign_direct(
            output_dir=None, size="smoke", seed=2, verbose=False
        )
        assert set(ARTIFACTS) <= set(results)


class TestCampaignCLI:
    def test_cli_campaign(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            ["campaign", "--size", "smoke", "--out", str(tmp_path / "artifacts")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign finished" in out
        assert (tmp_path / "artifacts" / "table2.txt").exists()
