"""Unit tests for the experiment dataset registry."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import ALL_DATASETS, dataset_names, dataset_size, make_dataset


class TestRegistry:
    def test_six_datasets(self):
        assert len(dataset_names()) == 6
        assert set(ALL_DATASETS) == {
            "LNS",
            "Sin",
            "Log",
            "Taxi",
            "Foursquare",
            "Taobao",
        }

    def test_paper_sizes_match_section_7_1(self):
        assert dataset_size("LNS", "paper") == (200_000, 800)
        assert dataset_size("Taxi", "paper") == (10_357, 886)
        assert dataset_size("Foursquare", "paper") == (265_149, 447)
        assert dataset_size("Taobao", "paper") == (1_023_154, 432)

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_dataset("Nope")
        with pytest.raises(InvalidParameterError):
            dataset_size("LNS", "huge")


class TestConstruction:
    @pytest.mark.parametrize("name", ALL_DATASETS)
    def test_smoke_size_instantiates(self, name):
        stream = make_dataset(name, size="smoke", seed=1)
        n, t = dataset_size(name, "smoke")
        assert stream.n_users == n
        assert stream.horizon == t

    def test_paper_domain_sizes(self):
        assert make_dataset("Taxi", size="smoke", seed=1).domain_size == 5
        assert make_dataset("Foursquare", size="smoke", seed=1).domain_size == 77
        assert make_dataset("Taobao", size="smoke", seed=1).domain_size == 117
        assert make_dataset("LNS", size="smoke", seed=1).domain_size == 2

    def test_overrides(self):
        stream = make_dataset("Sin", n_users=1_234, horizon=55, seed=1)
        assert stream.n_users == 1_234
        assert stream.horizon == 55

    def test_generator_kwargs_forwarded(self):
        stream = make_dataset(
            "Sin", size="smoke", b=0.5, amplitude=0.2, offset=0.5, seed=1
        )
        series = stream.frequency_matrix()[:, 1]
        assert series.max() > 0.6  # amplitude+offset visible
