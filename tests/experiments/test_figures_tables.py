"""Smoke + structure tests for the figure/table series generators.

These run every generator at tiny sizes and assert the *structure* matches
the paper's figures (methods, x-axes, value ranges).  The heavier
shape-of-results assertions live in tests/integration/test_paper_shape.py
and in the benchmarks.
"""

import pytest

from repro.experiments import (
    FIG7_METHODS,
    PAPER_TABLE2,
    TABLE2_DATASETS,
    TABLE2_SETTINGS,
    fig4_utility_vs_epsilon,
    fig5_utility_vs_window,
    fig6_fluctuation,
    fig6_population,
    fig7_event_monitoring,
    fig8_communication,
    format_figure,
    format_roc_summary,
    format_series_table,
    format_table2,
    table2_cfpu,
)
from repro.mechanisms import ALL_METHODS


class TestFig4:
    def test_structure(self):
        series = fig4_utility_vs_epsilon(
            datasets=("LNS",),
            methods=("LBU", "LPU"),
            epsilons=(0.5, 1.0),
            size="smoke",
            seed=0,
        )
        assert set(series) == {"LNS"}
        assert set(series["LNS"]) == {"LBU", "LPU"}
        assert set(series["LNS"]["LBU"]) == {0.5, 1.0}
        assert all(v > 0 for v in series["LNS"]["LBU"].values())


class TestFig5:
    def test_structure(self):
        series = fig5_utility_vs_window(
            datasets=("Sin",),
            methods=("LPU",),
            windows=(5, 10),
            size="smoke",
            seed=0,
        )
        assert set(series["Sin"]["LPU"]) == {5, 10}


class TestFig6:
    def test_population_panel(self):
        series = fig6_population(
            populations=(2_000, 4_000),
            datasets=("LNS",),
            methods=("LBU", "LPU"),
            horizon=40,
            seed=0,
        )
        assert set(series["LNS"]["LPU"]) == {2_000.0, 4_000.0}

    def test_error_decreases_with_population(self):
        series = fig6_population(
            populations=(2_000, 16_000),
            datasets=("LNS",),
            methods=("LPU",),
            horizon=60,
            repeats=3,
            seed=0,
        )
        values = series["LNS"]["LPU"]
        assert values[16_000.0] < values[2_000.0]

    def test_fluctuation_panels(self):
        series = fig6_fluctuation(
            q_values=(0.001, 0.008),
            b_values=(0.01,),
            methods=("LPA",),
            n_users=4_000,
            horizon=40,
            seed=0,
        )
        assert set(series) == {"LNS", "Sin"}
        assert set(series["LNS"]["LPA"]) == {0.001, 0.008}
        assert set(series["Sin"]["LPA"]) == {0.01}


class TestFig7:
    def test_structure(self):
        curves = fig7_event_monitoring(
            datasets=("Sin",), methods=("LPU", "LPA"), size="smoke", seed=0
        )
        assert set(curves["Sin"]) == {"LPU", "LPA"}
        for curve in curves["Sin"].values():
            assert 0.0 <= curve.auc <= 1.0

    def test_default_methods_match_paper(self):
        assert FIG7_METHODS == ("LBA", "LSP", "LPU", "LPD", "LPA")


class TestFig8:
    def test_four_panels(self):
        panels = fig8_communication(
            methods=("LBU", "LPU"),
            populations=(2_000,),
            q_values=(0.01,),
            epsilons=(1.0,),
            windows=(5,),
            n_users=2_000,
            horizon=40,
            seed=0,
        )
        assert set(panels) == {"N", "Q", "epsilon", "window"}
        assert panels["N"]["LBU"][2_000.0] == pytest.approx(1.0)
        assert panels["window"]["LPU"][5.0] == pytest.approx(0.2, rel=0.05)


class TestTable2:
    def test_structure_and_budget_division_rows(self):
        table = table2_cfpu(
            datasets=("Sin",), settings=((1.0, 5),), size="smoke", seed=0
        )
        block = table[(1.0, 5)]
        assert set(block) == set(ALL_METHODS)
        assert block["LBU"]["Sin"] == pytest.approx(1.0)
        assert block["LSP"]["Sin"] == pytest.approx(1 / 5, rel=0.05)
        assert 1.0 < block["LBD"]["Sin"] <= 2.0
        assert block["LPD"]["Sin"] <= 1 / 5 + 1e-9

    def test_paper_reference_complete(self):
        for setting in TABLE2_SETTINGS:
            block = PAPER_TABLE2[setting]
            assert set(block) == set(ALL_METHODS)
            for method in ALL_METHODS:
                assert set(block[method]) == set(TABLE2_DATASETS)


class TestReporting:
    def test_series_table_renders(self):
        text = format_series_table({"LBU": {0.5: 1.0, 1.0: 0.5}}, x_label="eps")
        assert "LBU" in text
        assert "0.5" in text

    def test_figure_renders_panels(self):
        text = format_figure({"LNS": {"LBU": {1.0: 0.1}}})
        assert "== LNS ==" in text

    def test_roc_summary_renders(self):
        curves = fig7_event_monitoring(
            datasets=("Sin",), methods=("LPU",), size="smoke", seed=0
        )
        text = format_roc_summary(curves)
        assert "Sin" in text and "LPU" in text

    def test_table2_renders_with_reference(self):
        table = {
            (1.0, 20): {"LBU": {"Sin": 1.0}},
        }
        paper = {(1.0, 20): {"LBU": {"Sin": 1.0}}}
        text = format_table2(table, paper)
        assert "1.0000/1.0000" in text

    def test_missing_values_render_dash(self):
        text = format_series_table({"A": {1.0: 0.5}, "B": {2.0: 0.1}})
        assert "-" in text
