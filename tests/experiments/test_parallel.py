"""Tests for the parallel experiment engine and its determinism contract.

The contract (see repro/experiments/parallel.py): a cell's randomness is a
pure function of the campaign seed and the cell's coordinates, so

* serial and multi-worker execution are bit-identical,
* reordering the grid changes no cell's result,
* a single repeat re-run in isolation reproduces its in-sequence value.
"""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    CellSpec,
    DatasetSpec,
    evaluate,
    evaluate_parallel,
    evaluate_repeat,
    execute_cells,
    grid_specs,
    merge_grid,
    merge_repeat_cells,
    run_cell,
    sweep,
)
from repro.experiments.parallel import resolve_jobs
from repro.streams import make_lns

CELL_FIELDS = (
    "mechanism",
    "epsilon",
    "window",
    "mre",
    "mae",
    "mse",
    "cfpu",
    "publication_rate",
    "auc",
    "repeats",
)


def assert_cells_identical(a, b):
    """Field-by-field bit-identity (NaN AUC compares equal to NaN)."""
    for name in CELL_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), name
        else:
            assert x == y, f"{name}: {x!r} != {y!r}"


#: A tiny name-addressable dataset every worker can rebuild quickly.
TINY = DatasetSpec.of("LNS", n_users=600, horizon=24, seed=11)


class TestDatasetSpec:
    def test_build_is_deterministic(self):
        a, b = TINY.build(), TINY.build()
        assert (a.values(0) == b.values(0)).all()
        assert a.n_users == 600 and a.horizon == 24

    def test_params_reach_generator(self):
        spec = DatasetSpec.of("LNS", n_users=100, horizon=10, seed=1, q_std=0.05)
        assert spec.params == (("q_std", 0.05),)
        assert spec.build().horizon == 10

    def test_specs_are_hashable_keys(self):
        assert DatasetSpec.of("LNS", seed=1) == DatasetSpec.of("LNS", seed=1)
        assert len({DatasetSpec.of("LNS", seed=1), DatasetSpec.of("LNS", seed=2)}) == 2


class TestSerialParallelIdentity:
    def test_sweep_jobs2_bit_identical(self):
        kwargs = dict(
            epsilons=(0.5, 1.0), windows=(5,), seed=3, repeats=2
        )
        serial = sweep(["LBU", "LPA"], TINY, jobs=1, **kwargs)
        parallel = sweep(["LBU", "LPA"], TINY, jobs=2, **kwargs)
        assert set(serial) == set(parallel) == {"LBU", "LPA"}
        for mechanism in serial:
            assert set(serial[mechanism]) == set(parallel[mechanism])
            for key in serial[mechanism]:
                assert_cells_identical(
                    serial[mechanism][key], parallel[mechanism][key]
                )

    def test_sweep_accepts_live_stream(self):
        stream = make_lns(n_users=400, horizon=20, seed=5)
        serial = sweep(["LPU"], stream, epsilons=(1.0,), windows=(5,), seed=2)
        parallel = sweep(
            ["LPU"], stream, epsilons=(1.0,), windows=(5,), seed=2, jobs=2
        )
        assert_cells_identical(
            serial["LPU"][(1.0, 5)], parallel["LPU"][(1.0, 5)]
        )

    def test_sweep_accepts_dataset_name(self):
        serial = sweep(
            ["LBU"], "LNS", epsilons=(1.0,), windows=(5,), seed=2
        )
        parallel = sweep(
            ["LBU"], "LNS", epsilons=(1.0,), windows=(5,), seed=2, jobs=2
        )
        assert_cells_identical(
            serial["LBU"][(1.0, 5)], parallel["LBU"][(1.0, 5)]
        )


class TestSeedStability:
    def test_cell_seed_ignores_grid_order(self):
        forward = sweep(
            ["LBU", "LPU"], TINY, epsilons=(0.5, 1.0), windows=(5, 10), seed=7
        )
        backward = sweep(
            ["LPU", "LBU"], TINY, epsilons=(1.0, 0.5), windows=(10, 5), seed=7
        )
        for mechanism in forward:
            for key in forward[mechanism]:
                assert_cells_identical(
                    forward[mechanism][key], backward[mechanism][key]
                )

    def test_cell_seed_ignores_grid_membership(self):
        full = sweep(
            ["LBU", "LPU", "LPA"], TINY, epsilons=(0.5, 1.0), windows=(5,), seed=7
        )
        solo = sweep(["LPA"], TINY, epsilons=(1.0,), windows=(5,), seed=7)
        assert_cells_identical(full["LPA"][(1.0, 5)], solo["LPA"][(1.0, 5)])

    def test_different_seeds_differ(self):
        a = sweep(["LPU"], TINY, epsilons=(1.0,), windows=(5,), seed=1)
        b = sweep(["LPU"], TINY, epsilons=(1.0,), windows=(5,), seed=2)
        assert a["LPU"][(1.0, 5)].mre != b["LPU"][(1.0, 5)].mre

    def test_cells_within_grid_are_independent(self):
        results = sweep(
            ["LPU"], TINY, epsilons=(1.0,), windows=(5, 10), seed=1
        )
        assert (
            results["LPU"][(1.0, 5)].mre != results["LPU"][(1.0, 10)].mre
        )

    def test_spec_seed_material_stable(self):
        spec = CellSpec(mechanism="LPA", dataset=TINY, epsilon=1.0, window=5)
        assert spec.seed_keys() == spec.seed_keys()
        other = CellSpec(mechanism="lpa", dataset=TINY, epsilon=1.0, window=5)
        assert spec.seed_keys() == other.seed_keys()  # case-insensitive


class TestRepeatSplitting:
    def test_evaluate_repeat_matches_in_sequence_value(self):
        stream = TINY.build()
        full = evaluate("LPU", stream, 1.0, 5, seed=9, repeats=3)
        parts = [
            evaluate_repeat("LPU", stream, 1.0, 5, index=i, seed=9)
            for i in range(3)
        ]
        assert_cells_identical(full, merge_repeat_cells(parts))

    def test_evaluate_parallel_split_matches_inline(self):
        inline = evaluate_parallel("LPA", TINY, 1.0, 5, seed=4, repeats=3, jobs=1)
        split = evaluate_parallel("LPA", TINY, 1.0, 5, seed=4, repeats=3, jobs=2)
        assert split.repeats == 3
        assert_cells_identical(inline, split)

    def test_merge_rejects_mixed_cells(self):
        stream = TINY.build()
        a = evaluate("LPU", stream, 1.0, 5, seed=1)
        b = evaluate("LPU", stream, 2.0, 5, seed=1)
        with pytest.raises(InvalidParameterError):
            merge_repeat_cells([a, b])

    def test_merge_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            merge_repeat_cells([])


class TestEngineParts:
    def test_grid_specs_row_major_and_merge(self):
        specs = grid_specs(
            ["LBU", "LPU"], TINY, epsilons=(0.5, 1.0), windows=(5, 10)
        )
        assert len(specs) == 8
        assert specs[0].mechanism == "LBU"
        assert (specs[0].epsilon, specs[0].window) == (0.5, 5)
        cells = execute_cells(specs, base_seed=0, jobs=1)
        results = merge_grid(specs, cells)
        assert set(results) == {"LBU", "LPU"}
        assert set(results["LBU"]) == {(0.5, 5), (0.5, 10), (1.0, 5), (1.0, 10)}

    def test_roc_cells_return_curves(self):
        spec = CellSpec(
            mechanism="LPA", dataset=TINY, epsilon=1.0, window=5, kind="roc"
        )
        curve = run_cell(spec, base_seed=0)
        assert 0.0 <= curve.auc <= 1.0
        # bit-identical across worker counts too
        curves = execute_cells([spec, spec], base_seed=0, jobs=2)
        assert curves[0].auc == curves[1].auc == run_cell(spec, 0).auc

    def test_unknown_kind_rejected(self):
        spec = CellSpec(
            mechanism="LPA", dataset=TINY, epsilon=1.0, window=5, kind="nope"
        )
        with pytest.raises(InvalidParameterError):
            run_cell(spec, base_seed=0)

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(InvalidParameterError):
            resolve_jobs(-2)

    def test_execute_preserves_spec_order(self):
        specs = grid_specs(["LBU"], TINY, epsilons=(0.5, 1.0, 1.5), windows=(5,))
        cells = execute_cells(specs, base_seed=0, jobs=3)
        assert [c.epsilon for c in cells] == [0.5, 1.0, 1.5]


class TestFigureParallelism:
    def test_fig4_jobs_identical(self):
        from repro.experiments import fig4_utility_vs_epsilon

        kwargs = dict(
            datasets=("LNS",),
            methods=("LBU", "LPU"),
            epsilons=(0.5, 1.0),
            size="smoke",
            seed=0,
        )
        assert fig4_utility_vs_epsilon(**kwargs) == fig4_utility_vs_epsilon(
            jobs=2, **kwargs
        )

    def test_table2_jobs_identical(self):
        from repro.experiments import table2_cfpu

        kwargs = dict(datasets=("Sin",), settings=((1.0, 5),), size="smoke", seed=0)
        assert table2_cfpu(**kwargs) == table2_cfpu(jobs=2, **kwargs)
