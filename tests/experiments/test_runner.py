"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import evaluate, run_single, sweep
from repro.streams import TaxiSimulator


class TestEvaluate:
    def test_metrics_present(self, small_binary_stream):
        cell = evaluate("LPU", small_binary_stream, 1.0, 5, seed=0)
        assert cell.mechanism == "LPU"
        assert cell.mre > 0
        assert cell.mae > 0
        assert cell.mse > 0
        assert 0 < cell.cfpu <= 1.0
        assert 0 <= cell.publication_rate <= 1.0
        assert np.isnan(cell.auc)  # ROC off by default

    def test_roc_enabled(self, small_binary_stream):
        cell = evaluate("LPU", small_binary_stream, 1.0, 5, seed=0, with_roc=True)
        assert 0.0 <= cell.auc <= 1.0

    def test_repeats_average(self, small_binary_stream):
        one = evaluate("LBU", small_binary_stream, 1.0, 5, seed=0, repeats=1)
        many = evaluate("LBU", small_binary_stream, 1.0, 5, seed=0, repeats=4)
        assert many.repeats == 4
        assert many.mre == pytest.approx(one.mre, rel=0.5)

    def test_invalid_repeats(self, small_binary_stream):
        with pytest.raises(InvalidParameterError):
            evaluate("LBU", small_binary_stream, 1.0, 5, repeats=0)

    def test_generative_stream_rewound_between_runs(self):
        stream = TaxiSimulator(n_users=500, horizon=20, seed=1)
        evaluate("LBU", stream, 1.0, 5, seed=0, repeats=2)
        # A third evaluation still works because reset() rewinds the cursor.
        cell = evaluate("LPU", stream, 1.0, 5, seed=0)
        assert cell.mre > 0

    def test_as_dict(self, small_binary_stream):
        cell = evaluate("LPU", small_binary_stream, 1.0, 5, seed=0)
        d = cell.as_dict()
        assert set(d) == {
            "mre",
            "mae",
            "mse",
            "cfpu",
            "publication_rate",
            "auc",
            "topk_precision",
        }


class TestSweep:
    def test_grid_shape(self, small_binary_stream):
        results = sweep(
            ["LBU", "LPU"],
            small_binary_stream,
            epsilons=(0.5, 1.0),
            windows=(5,),
            seed=0,
        )
        assert set(results) == {"LBU", "LPU"}
        assert set(results["LBU"]) == {(0.5, 5), (1.0, 5)}

    def test_error_decreases_with_epsilon(self, small_binary_stream):
        results = sweep(
            ["LBU"],
            small_binary_stream,
            epsilons=(0.5, 2.5),
            windows=(5,),
            seed=0,
            repeats=3,
        )
        assert results["LBU"][(2.5, 5)].mre < results["LBU"][(0.5, 5)].mre


class TestRunSingle:
    def test_returns_session_result(self, small_binary_stream):
        result = run_single("LPA", small_binary_stream, 1.0, 5, seed=0)
        assert result.mechanism == "LPA"
        assert result.horizon == small_binary_stream.horizon
