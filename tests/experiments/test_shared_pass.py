"""Tests for shared-pass coalescing in the parallel experiment engine.

Contract: coalescing cells that share a dataset into one SessionGroup
pass changes wall-clock only — every result is bit-identical to per-cell
execution (and hence to the serial pre-coalescing engine) at any worker
count and any group split.
"""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    CellSpec,
    DatasetSpec,
    coalesce_specs,
    execute_cells,
    grid_specs,
    run_cell,
    run_shared_pass,
    sweep,
)
from repro.experiments.parallel import (
    _DatasetLRU,
    _split_for_workers,
)
from repro.streams import make_lns

ALL_MECHANISMS = ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA")

TINY = DatasetSpec.of("LNS", n_users=500, horizon=20, seed=11)
TINY_SIM = DatasetSpec.of("Taxi", n_users=400, horizon=15, seed=11)

CELL_FIELDS = (
    "mechanism",
    "epsilon",
    "window",
    "mre",
    "mae",
    "mse",
    "cfpu",
    "publication_rate",
    "auc",
    "repeats",
)


def assert_cells_identical(a, b):
    for name in CELL_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), name
        else:
            assert x == y, f"{name}: {x!r} != {y!r}"


class TestCoalescer:
    def test_groups_by_dataset_spec(self):
        other = DatasetSpec.of("LNS", n_users=500, horizon=20, seed=12)
        specs = grid_specs(["LBU", "LPU"], TINY, epsilons=(1.0,)) + grid_specs(
            ["LBU"], other, epsilons=(1.0,)
        )
        groups = coalesce_specs(specs)
        assert [len(g) for g in groups] == [2, 1]
        assert groups[0] == [0, 1]

    def test_live_datasets_group_by_identity(self):
        a = make_lns(n_users=100, horizon=10, seed=1)
        b = make_lns(n_users=100, horizon=10, seed=1)
        specs = [
            CellSpec(mechanism="LBU", dataset=a, epsilon=1.0, window=5),
            CellSpec(mechanism="LPU", dataset=a, epsilon=1.0, window=5),
            CellSpec(mechanism="LBU", dataset=b, epsilon=1.0, window=5),
        ]
        assert [len(g) for g in coalesce_specs(specs)] == [2, 1]

    def test_split_for_workers_balances(self):
        groups = _split_for_workers([[0, 1, 2, 3, 4, 5, 6, 7]], 4)
        assert len(groups) == 4
        assert sorted(i for g in groups for i in g) == list(range(8))

    def test_split_stops_at_singletons(self):
        groups = _split_for_workers([[0], [1]], 8)
        assert [len(g) for g in groups] == [1, 1]


class TestSharedPassIdentity:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_every_mechanism_matches_solo_cell(self, mechanism):
        """Shared pass == per-cell run_cell, per mechanism, sim-backed."""
        specs = grid_specs(
            [mechanism], TINY_SIM, epsilons=(1.0,), windows=(5,), repeats=2
        )
        solo = [run_cell(spec, 3) for spec in specs]
        shared = run_shared_pass(specs, 3)
        for a, b in zip(solo, shared):
            assert_cells_identical(a, b)

    def test_full_grid_coalesced_vs_percell(self):
        specs = grid_specs(
            ALL_MECHANISMS, TINY_SIM, epsilons=(0.5, 1.0), windows=(5,)
        )
        per_cell = execute_cells(specs, base_seed=7, jobs=1, coalesce=False)
        shared = execute_cells(specs, base_seed=7, jobs=1, coalesce=True)
        workers = execute_cells(specs, base_seed=7, jobs=2, coalesce=True)
        for a, b, c in zip(per_cell, shared, workers):
            assert_cells_identical(a, b)
            assert_cells_identical(a, c)

    def test_roc_cells_in_shared_pass(self):
        specs = [
            CellSpec(
                mechanism=m,
                dataset=TINY,
                epsilon=1.0,
                window=5,
                kind="roc",
                tag="fig7",
            )
            for m in ("LBA", "LPA")
        ]
        solo = [run_cell(spec, 5) for spec in specs]
        shared = run_shared_pass(specs, 5)
        for a, b in zip(solo, shared):
            assert a.auc == b.auc
            assert np.array_equal(a.true_positive_rate, b.true_positive_rate)
            assert np.array_equal(a.false_positive_rate, b.false_positive_rate)

    def test_repeat_index_cells_in_shared_pass(self):
        spec = CellSpec(
            mechanism="LPD",
            dataset=TINY,
            epsilon=1.0,
            window=5,
            repeats=1,
            repeat_index=2,
            tag="evaluate",
        )
        assert_cells_identical(run_cell(spec, 9), run_shared_pass([spec, spec], 9)[0])

    def test_mixed_kinds_one_pass(self):
        cell = CellSpec(
            mechanism="LBU", dataset=TINY, epsilon=1.0, window=5, repeats=2
        )
        roc = CellSpec(
            mechanism="LBA", dataset=TINY, epsilon=1.0, window=5, kind="roc"
        )
        solo = [run_cell(cell, 2), run_cell(roc, 2)]
        shared = run_shared_pass([cell, roc], 2)
        assert_cells_identical(solo[0], shared[0])
        assert solo[1].auc == shared[1].auc

    def test_unknown_kind_rejected(self):
        spec = CellSpec(
            mechanism="LBU", dataset=TINY, epsilon=1.0, window=5, kind="nope"
        )
        with pytest.raises(InvalidParameterError):
            run_shared_pass([spec, spec], 0)

    def test_sweep_coalesced_matches_historical(self):
        """End-to-end: sweep() (now coalesced) == forced per-cell grid."""
        kwargs = dict(epsilons=(0.5, 1.0), windows=(5,), seed=3, repeats=2)
        coalesced = sweep(["LBU", "LPA"], TINY, jobs=1, **kwargs)
        specs = grid_specs(
            ["LBU", "LPA"],
            TINY,
            epsilons=kwargs["epsilons"],
            windows=kwargs["windows"],
            repeats=2,
        )
        per_cell = execute_cells(specs, base_seed=3, jobs=1, coalesce=False)
        for spec, cell in zip(specs, per_cell):
            assert_cells_identical(
                coalesced[str(spec.mechanism)][(spec.epsilon, spec.window)],
                cell,
            )


class TestDatasetLRU:
    def test_hit_refreshes_recency(self):
        cache = _DatasetLRU(maxsize=2)
        a = DatasetSpec.of("LNS", n_users=50, horizon=5, seed=1)
        b = DatasetSpec.of("LNS", n_users=50, horizon=5, seed=2)
        c = DatasetSpec.of("LNS", n_users=50, horizon=5, seed=3)
        built_a = cache.get_or_build(a)
        cache.get_or_build(b)
        assert cache.get_or_build(a) is built_a  # hit refreshes a
        cache.get_or_build(c)  # evicts b (least recently used), not a
        assert cache.get_or_build(a) is built_a
        assert cache.hits == 2

    def test_bounded_size(self):
        cache = _DatasetLRU(maxsize=2)
        specs = [
            DatasetSpec.of("LNS", n_users=50, horizon=5, seed=i)
            for i in range(6)
        ]
        for spec in specs:
            cache.get_or_build(spec)
        assert len(cache._entries) == 2
        assert cache.misses == 6

    def test_zero_size_disables_caching(self):
        cache = _DatasetLRU(maxsize=0)
        spec = DatasetSpec.of("LNS", n_users=50, horizon=5, seed=1)
        first = cache.get_or_build(spec)
        second = cache.get_or_build(spec)
        assert first is not second
        assert len(cache._entries) == 0
