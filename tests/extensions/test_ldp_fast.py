"""Tests for the LPF extension (population-division FAST)."""

import numpy as np
import pytest

from repro.analysis import mean_squared_error
from repro.engine import run_stream
from repro.exceptions import InvalidParameterError
from repro.extensions import LPF
from repro.mechanisms import get_mechanism
from repro.streams import BinaryStream, make_sin


class TestLPFBasics:
    def test_registered(self):
        assert get_mechanism("lpf").name == "LPF"

    def test_runs_and_tracks(self, small_sin_stream):
        result = run_stream("LPF", small_sin_stream, epsilon=1.0, window=5, seed=0)
        assert result.releases.shape == (small_sin_stream.horizon, 2)
        assert mean_squared_error(result.releases, result.true_frequencies) < 0.05

    def test_privacy_budget_respected(self, small_sin_stream):
        result = run_stream("LPF", small_sin_stream, epsilon=1.0, window=5, seed=0)
        assert result.max_window_spend <= 1.0 + 1e-9

    def test_group_size_at_most_n_over_w(self, small_sin_stream):
        w = 5
        n = small_sin_stream.n_users
        result = run_stream("LPF", small_sin_stream, epsilon=1.0, window=w, seed=0)
        assert all(r.publication_users <= n // w for r in result.records)

    def test_adaptive_interval_skips_timestamps(self, constant_stream):
        """On a static stream the PID controller should slow sampling down."""
        result = run_stream("LPF", constant_stream, epsilon=1.0, window=5, seed=0)
        assert result.publication_rate < 1.0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            LPF(process_variance=0.0)

    def test_needs_enough_users(self):
        tiny = BinaryStream(np.full(5, 0.5), n_users=3, seed=0)
        with pytest.raises(InvalidParameterError):
            run_stream("LPF", tiny, epsilon=1.0, window=5, seed=0)


class TestLPFFiltering:
    def test_kalman_smoothing_beats_raw_lpu_on_slow_stream(self):
        """On a slowly varying stream, LPF's filtered estimates should beat
        the unfiltered LPU releases with the same per-round population."""
        stream = make_sin(n_users=10_000, horizon=100, b=0.005, seed=3)
        lpf_mse, lpu_mse = [], []
        for seed in range(5):
            lpf = run_stream("LPF", stream, epsilon=0.5, window=10, seed=seed)
            lpu = run_stream("LPU", stream, epsilon=0.5, window=10, seed=seed)
            lpf_mse.append(mean_squared_error(lpf.releases, lpf.true_frequencies))
            lpu_mse.append(mean_squared_error(lpu.releases, lpu.true_frequencies))
        assert np.mean(lpf_mse) < np.mean(lpu_mse)
