"""Tests for post-release smoothing utilities."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.extensions import (
    adaptive_group_smoothing,
    exponential_smoothing,
    moving_average,
)


@pytest.fixture
def noisy_constant(rng):
    truth = np.tile([0.3, 0.7], (60, 1))
    return truth, truth + rng.normal(0, 0.05, size=truth.shape)


class TestMovingAverage:
    def test_width_one_is_identity(self, noisy_constant):
        _, noisy = noisy_constant
        assert np.allclose(moving_average(noisy, 1), noisy)

    def test_reduces_noise_on_constant(self, noisy_constant):
        truth, noisy = noisy_constant
        smoothed = moving_average(noisy, 10)
        assert np.mean((smoothed - truth) ** 2) < np.mean((noisy - truth) ** 2)

    def test_trailing_window_semantics(self):
        trace = np.arange(10, dtype=float).reshape(-1, 1)
        out = moving_average(trace, 3)
        assert out[0, 0] == 0.0
        assert out[2, 0] == pytest.approx(1.0)
        assert out[9, 0] == pytest.approx(8.0)

    def test_invalid_width(self, noisy_constant):
        with pytest.raises(InvalidParameterError):
            moving_average(noisy_constant[1], 0)


class TestExponentialSmoothing:
    def test_alpha_one_is_identity(self, noisy_constant):
        _, noisy = noisy_constant
        assert np.allclose(exponential_smoothing(noisy, 1.0), noisy)

    def test_reduces_noise(self, noisy_constant):
        truth, noisy = noisy_constant
        smoothed = exponential_smoothing(noisy, 0.2)
        assert np.mean((smoothed - truth) ** 2) < np.mean((noisy - truth) ** 2)

    def test_invalid_alpha(self, noisy_constant):
        with pytest.raises(InvalidParameterError):
            exponential_smoothing(noisy_constant[1], 0.0)
        with pytest.raises(InvalidParameterError):
            exponential_smoothing(noisy_constant[1], 1.5)


class TestAdaptiveGroupSmoothing:
    def test_reduces_noise_on_flat_segments(self, noisy_constant):
        truth, noisy = noisy_constant
        smoothed = adaptive_group_smoothing(noisy, noise_std=0.05)
        assert np.mean((smoothed - truth) ** 2) < np.mean((noisy - truth) ** 2)

    def test_preserves_level_changes(self, rng):
        truth = np.vstack(
            [np.tile([0.2, 0.8], (30, 1)), np.tile([0.7, 0.3], (30, 1))]
        )
        noisy = truth + rng.normal(0, 0.02, size=truth.shape)
        smoothed = adaptive_group_smoothing(noisy, noise_std=0.02)
        # Early and late levels must stay distinguishable after smoothing.
        assert abs(smoothed[:20, 0].mean() - smoothed[40:, 0].mean()) > 0.3

    def test_invalid_noise_std(self, noisy_constant):
        with pytest.raises(InvalidParameterError):
            adaptive_group_smoothing(noisy_constant[1], noise_std=0.0)
