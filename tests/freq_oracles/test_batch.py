"""Tests for the batched count-level samplers (sample_aggregate_batch)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles import available_oracles, get_oracle

VECTORIZED = ("grr", "oue", "sue")


def _batch_counts(rng, batch=64, domain=6, n=4000):
    probs = rng.dirichlet(np.ones(domain))
    return rng.multinomial(n, probs, size=batch), probs


class TestShapesAndErrors:
    @pytest.mark.parametrize("name", sorted(available_oracles()))
    def test_batch_shape(self, name, rng):
        counts, _ = _batch_counts(rng, batch=8)
        out = get_oracle(name).sample_aggregate_batch(counts, 1.0, rng=rng)
        assert out.shape == counts.shape
        assert out.dtype == np.float64

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rejects_non_matrix(self, name, rng):
        oracle = get_oracle(name)
        with pytest.raises(InvalidParameterError):
            oracle.sample_aggregate_batch(np.array([1, 2, 3]), 1.0, rng=rng)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rejects_zero_report_row(self, name, rng):
        oracle = get_oracle(name)
        counts = np.array([[2, 3], [0, 0]])
        with pytest.raises(InvalidParameterError):
            oracle.sample_aggregate_batch(counts, 1.0, rng=rng)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rejects_negative_counts(self, name, rng):
        oracle = get_oracle(name)
        with pytest.raises(InvalidParameterError):
            oracle.sample_aggregate_batch(np.array([[3, -1]]), 1.0, rng=rng)


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rows_unbiased(self, name, rng):
        """Mean of the batch estimates converges to the true frequencies."""
        counts, probs = _batch_counts(rng, batch=400, n=5000)
        out = get_oracle(name).sample_aggregate_batch(counts, 1.0, rng=rng)
        truth = counts / counts.sum(axis=1, keepdims=True)
        assert np.abs(out.mean(axis=0) - truth.mean(axis=0)).max() < 0.02

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_row_variance_matches_single_round(self, name, rng):
        """Batch rows fluctuate like independent sample_aggregate calls."""
        oracle = get_oracle(name)
        row = np.full(4, 1000)
        counts = np.tile(row, (300, 1))
        batch = oracle.sample_aggregate_batch(counts, 1.0, rng=rng)
        singles = np.stack(
            [
                oracle.sample_aggregate(row, 1.0, rng=rng).frequencies
                for _ in range(300)
            ]
        )
        batch_std = batch.std(axis=0)
        single_std = singles.std(axis=0)
        assert np.all(batch_std < 2.0 * single_std)
        assert np.all(single_std < 2.0 * batch_std)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_mixed_row_totals(self, name, rng):
        """Rows with different report counts debias independently."""
        counts = np.array([[50, 25, 25], [5000, 2500, 2500]])
        reps = np.stack(
            [
                get_oracle(name).sample_aggregate_batch(counts, 2.0, rng=rng)
                for _ in range(200)
            ]
        )
        means = reps.mean(axis=0)
        assert np.abs(means - [0.5, 0.25, 0.25]).max() < 0.1

    def test_base_fallback_matches_sequential_calls(self, rng):
        """The base-class loop is literally sequential sample_aggregate."""
        oracle = get_oracle("olh")
        counts = np.array([[100, 50, 25], [10, 10, 10]])
        a = oracle.sample_aggregate_batch(
            counts, 1.0, rng=np.random.default_rng(7)
        )
        loop_rng = np.random.default_rng(7)
        b = np.stack(
            [
                oracle.sample_aggregate(row, 1.0, rng=loop_rng).frequencies
                for row in counts
            ]
        )
        assert np.array_equal(a, b)
