"""Tests for the batched count-level samplers (sample_aggregate_batch)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles import available_oracles, get_oracle
from repro.freq_oracles.base import FrequencyOracle

VECTORIZED = ("grr", "oue", "sue", "olh", "hr")
#: Oracles whose batch sampler replays the per-round draw order exactly.
BIT_IDENTICAL = ("olh", "hr")


def _batch_counts(rng, batch=64, domain=6, n=4000):
    probs = rng.dirichlet(np.ones(domain))
    return rng.multinomial(n, probs, size=batch), probs


class TestShapesAndErrors:
    @pytest.mark.parametrize("name", sorted(available_oracles()))
    def test_batch_shape(self, name, rng):
        counts, _ = _batch_counts(rng, batch=8)
        out = get_oracle(name).sample_aggregate_batch(counts, 1.0, rng=rng)
        assert out.shape == counts.shape
        assert out.dtype == np.float64

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rejects_non_matrix(self, name, rng):
        oracle = get_oracle(name)
        with pytest.raises(InvalidParameterError):
            oracle.sample_aggregate_batch(np.array([1, 2, 3]), 1.0, rng=rng)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rejects_zero_report_row(self, name, rng):
        oracle = get_oracle(name)
        counts = np.array([[2, 3], [0, 0]])
        with pytest.raises(InvalidParameterError):
            oracle.sample_aggregate_batch(counts, 1.0, rng=rng)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rejects_negative_counts(self, name, rng):
        oracle = get_oracle(name)
        with pytest.raises(InvalidParameterError):
            oracle.sample_aggregate_batch(np.array([[3, -1]]), 1.0, rng=rng)


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("name", VECTORIZED)
    def test_rows_unbiased(self, name, rng):
        """Mean of the batch estimates converges to the true frequencies."""
        counts, probs = _batch_counts(rng, batch=400, n=5000)
        out = get_oracle(name).sample_aggregate_batch(counts, 1.0, rng=rng)
        truth = counts / counts.sum(axis=1, keepdims=True)
        assert np.abs(out.mean(axis=0) - truth.mean(axis=0)).max() < 0.02

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_row_variance_matches_single_round(self, name, rng):
        """Batch rows fluctuate like independent sample_aggregate calls."""
        oracle = get_oracle(name)
        row = np.full(4, 1000)
        counts = np.tile(row, (300, 1))
        batch = oracle.sample_aggregate_batch(counts, 1.0, rng=rng)
        singles = np.stack(
            [
                oracle.sample_aggregate(row, 1.0, rng=rng).frequencies
                for _ in range(300)
            ]
        )
        batch_std = batch.std(axis=0)
        single_std = singles.std(axis=0)
        assert np.all(batch_std < 2.0 * single_std)
        assert np.all(single_std < 2.0 * batch_std)

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_mixed_row_totals(self, name, rng):
        """Rows with different report counts debias independently."""
        counts = np.array([[50, 25, 25], [5000, 2500, 2500]])
        reps = np.stack(
            [
                get_oracle(name).sample_aggregate_batch(counts, 2.0, rng=rng)
                for _ in range(200)
            ]
        )
        means = reps.mean(axis=0)
        assert np.abs(means - [0.5, 0.25, 0.25]).max() < 0.1

    def test_base_fallback_matches_sequential_calls(self, rng):
        """The base-class loop is literally sequential sample_aggregate."""

        class LoopOnly(FrequencyOracle):
            """GRR facade that only inherits the base batch fallback."""

            name = "loop-only"

            def __init__(self):
                self._grr = get_oracle("grr")

            def perturb(self, values, domain_size, epsilon, rng=None):
                return self._grr.perturb(values, domain_size, epsilon, rng)

            def aggregate(self, reports, domain_size, epsilon):
                return self._grr.aggregate(reports, domain_size, epsilon)

            def sample_aggregate(self, true_counts, epsilon, rng=None):
                return self._grr.sample_aggregate(true_counts, epsilon, rng)

            def variance(self, epsilon, n, domain_size):
                return self._grr.variance(epsilon, n, domain_size)

        oracle = LoopOnly()
        counts = np.array([[100, 50, 25], [10, 10, 10]])
        a = oracle.sample_aggregate_batch(
            counts, 1.0, rng=np.random.default_rng(7)
        )
        loop_rng = np.random.default_rng(7)
        b = np.stack(
            [
                oracle.sample_aggregate(row, 1.0, rng=loop_rng).frequencies
                for row in counts
            ]
        )
        assert np.array_equal(a, b)


class TestBitIdentity:
    """OLH/HR batch samplers replay the per-timestamp path exactly.

    Their interleaved (B, 2, d) binomial stack consumes the generator in
    the same element order as row-by-row sample_aggregate calls, so the
    outputs are bit-identical — replaying a stream range through the
    batch API gives byte-for-byte the estimates the streaming engine
    would have produced round by round.
    """

    @pytest.mark.parametrize("name", BIT_IDENTICAL)
    @pytest.mark.parametrize("epsilon", [0.4, 1.0, 2.7])
    def test_batch_equals_per_round_path(self, name, epsilon, rng):
        oracle = get_oracle(name)
        counts = rng.multinomial(4000, rng.dirichlet(np.ones(9)), size=32)
        batch = oracle.sample_aggregate_batch(
            counts, epsilon, rng=np.random.default_rng(123)
        )
        loop_rng = np.random.default_rng(123)
        rounds = np.stack(
            [
                oracle.sample_aggregate(
                    row, epsilon, rng=loop_rng
                ).frequencies
                for row in counts
            ]
        )
        assert np.array_equal(batch, rounds)

    @pytest.mark.parametrize("name", BIT_IDENTICAL)
    def test_mixed_row_totals_stay_identical(self, name):
        oracle = get_oracle(name)
        counts = np.array([[50, 25, 25], [5000, 2500, 2500], [1, 1, 1]])
        batch = oracle.sample_aggregate_batch(
            counts, 1.0, rng=np.random.default_rng(9)
        )
        loop_rng = np.random.default_rng(9)
        rounds = np.stack(
            [
                oracle.sample_aggregate(row, 1.0, rng=loop_rng).frequencies
                for row in counts
            ]
        )
        assert np.array_equal(batch, rounds)
