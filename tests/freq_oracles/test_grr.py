"""Unit tests for the GRR frequency oracle."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles import GRR, grr_probabilities
from repro.freq_oracles.variance import grr_mean_variance


@pytest.fixture
def oracle():
    return GRR()


class TestProbabilities:
    def test_keep_probability_formula(self):
        p, q = grr_probabilities(1.0, 4)
        e = math.exp(1.0)
        assert p == pytest.approx(e / (e + 3))
        assert q == pytest.approx(1 / (e + 3))

    def test_probabilities_sum_to_one_over_domain(self):
        for d in (2, 5, 117):
            p, q = grr_probabilities(0.7, d)
            assert p + (d - 1) * q == pytest.approx(1.0)

    def test_high_epsilon_approaches_truthful(self):
        p, _ = grr_probabilities(20.0, 4)
        assert p > 0.999

    def test_ratio_respects_epsilon(self):
        p, q = grr_probabilities(1.3, 10)
        assert p / q == pytest.approx(math.exp(1.3))


class TestPerturb:
    def test_output_stays_in_domain(self, oracle, rng):
        values = rng.integers(0, 6, size=500)
        reports = oracle.perturb(values, 6, 1.0, rng=rng)
        assert reports.min() >= 0
        assert reports.max() < 6

    def test_high_epsilon_is_near_identity(self, oracle, rng):
        values = rng.integers(0, 4, size=200)
        reports = oracle.perturb(values, 4, 30.0, rng=rng)
        assert np.array_equal(reports, values)

    def test_keep_rate_matches_p(self, oracle, rng):
        values = np.zeros(40_000, dtype=np.int64)
        reports = oracle.perturb(values, 5, 1.0, rng=rng)
        p, _ = grr_probabilities(1.0, 5)
        kept = float(np.mean(reports == 0))
        assert kept == pytest.approx(p, abs=0.01)

    def test_lie_is_uniform_over_others(self, oracle, rng):
        values = np.zeros(120_000, dtype=np.int64)
        reports = oracle.perturb(values, 4, 0.5, rng=rng)
        lies = reports[reports != 0]
        counts = np.bincount(lies, minlength=4)[1:]
        assert counts.std() / counts.mean() < 0.05

    def test_rejects_out_of_domain_values(self, oracle):
        with pytest.raises(InvalidParameterError):
            oracle.perturb(np.array([0, 5]), 4, 1.0)

    def test_rejects_nonpositive_epsilon(self, oracle):
        with pytest.raises(InvalidParameterError):
            oracle.perturb(np.array([0, 1]), 4, 0.0)
        with pytest.raises(InvalidParameterError):
            oracle.perturb(np.array([0, 1]), 4, -1.0)

    def test_rejects_tiny_domain(self, oracle):
        with pytest.raises(InvalidParameterError):
            oracle.perturb(np.array([0]), 1, 1.0)


class TestAggregate:
    def test_unbiasedness(self, oracle, rng):
        true = np.array([0.5, 0.3, 0.2])
        values = rng.choice(3, size=50_000, p=true)
        reports = oracle.perturb(values, 3, 1.0, rng=rng)
        estimate = oracle.aggregate(reports, 3, 1.0)
        empirical = np.bincount(values, minlength=3) / values.size
        assert np.allclose(estimate.frequencies, empirical, atol=0.03)

    def test_estimate_sums_to_one(self, oracle, rng):
        values = rng.integers(0, 4, size=5_000)
        reports = oracle.perturb(values, 4, 1.0, rng=rng)
        estimate = oracle.aggregate(reports, 4, 1.0)
        # Debiasing preserves the total mass exactly.
        assert estimate.frequencies.sum() == pytest.approx(1.0)

    def test_metadata_fields(self, oracle, rng):
        values = rng.integers(0, 4, size=1_000)
        reports = oracle.perturb(values, 4, 2.0, rng=rng)
        estimate = oracle.aggregate(reports, 4, 2.0)
        assert estimate.n_reports == 1_000
        assert estimate.epsilon == 2.0
        assert estimate.domain_size == 4
        assert estimate.variance == pytest.approx(grr_mean_variance(2.0, 1_000, 4))

    def test_empty_reports_rejected(self, oracle):
        with pytest.raises(InvalidParameterError):
            oracle.aggregate(np.empty(0, dtype=np.int64), 4, 1.0)


class TestSampleAggregate:
    def test_matches_per_user_distribution(self, oracle):
        """Count-level sampling and per-user simulation agree in moments."""
        true_counts = np.array([700, 200, 100])
        eps, d, runs = 0.8, 3, 400
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        fast = np.array(
            [
                oracle.sample_aggregate(true_counts, eps, rng=rng_a).frequencies
                for _ in range(runs)
            ]
        )
        values = np.repeat(np.arange(d), true_counts)
        slow = np.array(
            [
                oracle.aggregate(
                    oracle.perturb(values, d, eps, rng=rng_b), d, eps
                ).frequencies
                for _ in range(runs)
            ]
        )
        assert np.allclose(fast.mean(axis=0), slow.mean(axis=0), atol=0.02)
        assert np.allclose(fast.std(axis=0), slow.std(axis=0), rtol=0.25)

    def test_unbiased_at_count_level(self, oracle, rng):
        true_counts = np.array([5_000, 3_000, 2_000])
        estimates = np.array(
            [
                oracle.sample_aggregate(true_counts, 1.0, rng=rng).frequencies
                for _ in range(200)
            ]
        )
        assert np.allclose(estimates.mean(axis=0), [0.5, 0.3, 0.2], atol=0.01)

    def test_variance_matches_closed_form(self, oracle, rng):
        n, d, eps = 20_000, 4, 1.0
        true_counts = np.array([n, 0, 0, 0])
        estimates = np.array(
            [
                oracle.sample_aggregate(true_counts, eps, rng=rng).frequencies
                for _ in range(300)
            ]
        )
        empirical = float(estimates.var(axis=0).mean())
        predicted = grr_mean_variance(eps, n, d)
        # The f_k term concentrates on cell 0 here; allow a loose band.
        assert empirical == pytest.approx(predicted, rel=0.5)
