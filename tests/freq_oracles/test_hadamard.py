"""Unit tests for the Hadamard Response oracle."""

import math

import numpy as np
import pytest

from repro.freq_oracles import (
    HadamardResponse,
    get_oracle,
    hadamard_order,
    hr_probability,
)
from repro.freq_oracles.hadamard import hadamard_entry


class TestHadamardMatrix:
    def test_order_is_power_of_two_above_d(self):
        assert hadamard_order(2) == 4
        assert hadamard_order(3) == 4
        assert hadamard_order(4) == 8
        assert hadamard_order(77) == 128

    def test_entries_are_pm_one(self):
        rows = np.arange(8)
        for r in rows:
            entries = hadamard_entry(np.int64(r), np.arange(8))
            assert set(np.unique(entries)) <= {-1, 1}

    def test_row_zero_all_ones(self):
        assert (hadamard_entry(np.int64(0), np.arange(16)) == 1).all()

    def test_rows_are_orthogonal(self):
        order = 16
        cols = np.arange(order)
        for r1 in range(order):
            for r2 in range(r1 + 1, order):
                a = hadamard_entry(np.int64(r1), cols)
                b = hadamard_entry(np.int64(r2), cols)
                assert int(np.dot(a, b)) == 0

    def test_nonzero_rows_balanced(self):
        order = 32
        cols = np.arange(order)
        for r in range(1, order):
            assert hadamard_entry(np.int64(r), cols).sum() == 0


class TestHRProtocol:
    def test_registered(self):
        assert isinstance(get_oracle("hr"), HadamardResponse)

    def test_support_probability(self):
        assert hr_probability(1.0) == pytest.approx(
            math.exp(1.0) / (math.exp(1.0) + 1.0)
        )

    def test_perturb_output_range(self, rng):
        oracle = HadamardResponse()
        reports = oracle.perturb(rng.integers(0, 5, size=300), 5, 1.0, rng=rng)
        order = hadamard_order(5)
        assert reports.min() >= 0
        assert reports.max() < order

    def test_support_rate_matches_p(self, rng):
        oracle = HadamardResponse()
        values = np.zeros(40_000, dtype=np.int64)
        reports = oracle.perturb(values, 4, 1.0, rng=rng)
        signs = hadamard_entry(np.int64(1), reports)
        rate = float(np.mean(signs == 1))
        assert rate == pytest.approx(hr_probability(1.0), abs=0.01)

    def test_aggregate_unbiased(self, rng):
        oracle = HadamardResponse()
        true = np.array([0.5, 0.3, 0.15, 0.05])
        values = rng.choice(4, size=60_000, p=true)
        reports = oracle.perturb(values, 4, 1.0, rng=rng)
        estimate = oracle.aggregate(reports, 4, 1.0)
        empirical = np.bincount(values, minlength=4) / values.size
        assert np.allclose(estimate.frequencies, empirical, atol=0.03)

    def test_sample_aggregate_unbiased(self, rng):
        oracle = HadamardResponse()
        counts = np.array([5_000, 3_000, 1_500, 500])
        estimates = np.array(
            [
                oracle.sample_aggregate(counts, 1.0, rng=rng).frequencies
                for _ in range(200)
            ]
        )
        assert np.allclose(estimates.mean(axis=0), counts / 10_000, atol=0.01)

    def test_variance_close_to_prediction(self, rng):
        oracle = HadamardResponse()
        n = 20_000
        counts = np.array([n, 0, 0, 0])
        estimates = np.array(
            [
                oracle.sample_aggregate(counts, 1.0, rng=rng).frequencies
                for _ in range(300)
            ]
        )
        empirical = float(estimates.var(axis=0).mean())
        assert empirical == pytest.approx(
            oracle.variance(1.0, n, 4), rel=0.3
        )

    def test_drives_stream_mechanism(self, small_binary_stream):
        from repro.engine import run_stream

        result = run_stream(
            "LPA", small_binary_stream, epsilon=1.0, window=5, oracle="hr", seed=1
        )
        assert result.oracle == "hr"
        assert result.max_window_spend <= 1.0 + 1e-9
