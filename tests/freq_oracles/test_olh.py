"""Unit tests for the OLH frequency oracle."""

import math

import numpy as np
import pytest

from repro.freq_oracles import OLH, olh_hash_range


class TestHashRange:
    def test_formula(self):
        assert olh_hash_range(1.0) == round(math.exp(1.0)) + 1

    def test_minimum_is_two(self):
        assert olh_hash_range(0.01) >= 2

    def test_grows_with_epsilon(self):
        assert olh_hash_range(3.0) > olh_hash_range(1.0)


class TestOLH:
    def test_report_shape(self, rng):
        oracle = OLH()
        values = rng.integers(0, 10, size=50)
        reports = oracle.perturb(values, 10, 1.0, rng=rng)
        assert reports.shape == (50, 3)

    def test_reported_hash_in_range(self, rng):
        oracle = OLH()
        values = rng.integers(0, 10, size=200)
        reports = oracle.perturb(values, 10, 1.0, rng=rng)
        g = olh_hash_range(1.0)
        assert reports[:, 2].min() >= 0
        assert reports[:, 2].max() < g

    def test_aggregate_unbiased(self, rng):
        oracle = OLH()
        true = np.array([0.5, 0.3, 0.1, 0.1])
        values = rng.choice(4, size=30_000, p=true)
        reports = oracle.perturb(values, 4, 1.0, rng=rng)
        estimate = oracle.aggregate(reports, 4, 1.0)
        empirical = np.bincount(values, minlength=4) / values.size
        assert np.allclose(estimate.frequencies, empirical, atol=0.04)

    def test_sample_aggregate_unbiased(self, rng):
        oracle = OLH()
        true_counts = np.array([5_000, 3_000, 1_000, 1_000])
        estimates = np.array(
            [
                oracle.sample_aggregate(true_counts, 1.0, rng=rng).frequencies
                for _ in range(200)
            ]
        )
        assert np.allclose(estimates.mean(axis=0), [0.5, 0.3, 0.1, 0.1], atol=0.01)

    def test_count_level_matches_per_user_mean(self):
        oracle = OLH()
        true_counts = np.array([500, 300, 200])
        values = np.repeat(np.arange(3), true_counts)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(4)
        fast = np.array(
            [
                oracle.sample_aggregate(true_counts, 1.0, rng=rng_a).frequencies
                for _ in range(200)
            ]
        )
        slow = np.array(
            [
                oracle.aggregate(
                    oracle.perturb(values, 3, 1.0, rng=rng_b), 3, 1.0
                ).frequencies
                for _ in range(200)
            ]
        )
        assert np.allclose(fast.mean(axis=0), slow.mean(axis=0), atol=0.04)

    def test_rejects_bad_report_shape(self, rng):
        oracle = OLH()
        with pytest.raises(ValueError):
            oracle.aggregate(rng.integers(0, 5, size=(10, 2)), 4, 1.0)
