"""Unit tests for FO post-processing (consistency steps)."""

import numpy as np
import pytest

from repro.freq_oracles.postprocess import (
    clip,
    get_postprocessor,
    norm_sub,
    normalize,
    project_simplex,
)


class TestClip:
    def test_clamps_range(self):
        out = clip(np.array([-0.2, 0.5, 1.3]))
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_identity_inside_range(self):
        x = np.array([0.1, 0.4, 0.5])
        assert np.array_equal(clip(x), x)


class TestNormalize:
    def test_sums_to_one(self):
        out = normalize(np.array([-0.1, 0.5, 0.9]))
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()

    def test_all_negative_falls_back_to_uniform(self):
        out = normalize(np.array([-1.0, -2.0, -3.0, -4.0]))
        assert np.allclose(out, 0.25)


class TestNormSub:
    def test_sums_to_one_and_nonnegative(self, rng):
        for _ in range(20):
            x = rng.normal(0.25, 0.3, size=8)
            out = norm_sub(x)
            assert out.sum() == pytest.approx(1.0)
            assert (out >= 0).all()

    def test_valid_distribution_with_total_one_unchanged(self):
        x = np.array([0.2, 0.3, 0.5])
        assert np.allclose(norm_sub(x), x)

    def test_uniform_shift_recovered(self):
        """A constant offset on a valid distribution is removed exactly."""
        x = np.array([0.2, 0.3, 0.5]) + 0.1
        assert np.allclose(norm_sub(x), [0.2, 0.3, 0.5])

    def test_all_nonpositive_falls_back_to_uniform(self):
        out = norm_sub(np.array([-0.5, -0.1]))
        assert np.allclose(out, 0.5)


class TestProjectSimplex:
    def test_projection_is_on_simplex(self, rng):
        for _ in range(20):
            x = rng.normal(0.0, 1.0, size=6)
            out = project_simplex(x)
            assert out.sum() == pytest.approx(1.0)
            assert (out >= 0).all()

    def test_idempotent(self, rng):
        x = project_simplex(rng.normal(0.0, 1.0, size=6))
        assert np.allclose(project_simplex(x), x)

    def test_point_on_simplex_unchanged(self):
        x = np.array([0.1, 0.2, 0.7])
        assert np.allclose(project_simplex(x), x)

    def test_is_closest_point(self, rng):
        """Projection beats random simplex points in Euclidean distance."""
        x = rng.normal(0.2, 0.5, size=5)
        projected = project_simplex(x)
        for _ in range(50):
            candidate = rng.dirichlet(np.ones(5))
            assert np.linalg.norm(x - projected) <= np.linalg.norm(
                x - candidate
            ) + 1e-12


class TestRegistry:
    def test_known_names(self):
        for name in ("none", "clip", "normalize", "norm_sub", "project_simplex"):
            assert callable(get_postprocessor(name))

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_postprocessor("nope")

    def test_none_is_identity(self):
        x = np.array([-0.5, 1.5])
        assert np.array_equal(get_postprocessor("none")(x), x)
