"""Unit tests for the frequency-oracle base class and registry."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles import (
    GRR,
    OLH,
    OUE,
    SUE,
    available_oracles,
    get_oracle,
)


class TestRegistry:
    def test_all_registered(self):
        assert set(available_oracles()) >= {"grr", "oue", "olh", "sue"}

    def test_get_by_name(self):
        assert isinstance(get_oracle("grr"), GRR)
        assert isinstance(get_oracle("OUE"), OUE)

    def test_get_by_class(self):
        assert isinstance(get_oracle(OLH), OLH)

    def test_passthrough_instance(self):
        oracle = SUE()
        assert get_oracle(oracle) is oracle

    def test_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            get_oracle("unknown-oracle")


@pytest.mark.parametrize("name", ["grr", "oue", "olh", "sue"])
class TestCommonContract:
    """Every oracle satisfies the same round-trip contract."""

    def test_roundtrip_runs(self, name, rng):
        oracle = get_oracle(name)
        values = rng.integers(0, 5, size=300)
        reports = oracle.perturb(values, 5, 1.0, rng=rng)
        estimate = oracle.aggregate(reports, 5, 1.0)
        assert estimate.frequencies.shape == (5,)
        assert estimate.n_reports == 300

    def test_sample_aggregate_runs(self, name, rng):
        oracle = get_oracle(name)
        counts = np.array([100, 80, 60, 40, 20])
        estimate = oracle.sample_aggregate(counts, 1.0, rng=rng)
        assert estimate.frequencies.shape == (5,)
        assert estimate.n_reports == 300

    def test_variance_positive_and_monotone(self, name):
        oracle = get_oracle(name)
        v1 = oracle.variance(1.0, 1_000, 5)
        v2 = oracle.variance(1.0, 2_000, 5)
        assert v1 > 0
        assert v2 < v1

    def test_estimate_variance_field_consistent(self, name, rng):
        oracle = get_oracle(name)
        counts = np.array([500, 300, 200])
        estimate = oracle.sample_aggregate(counts, 1.5, rng=rng)
        assert estimate.variance == pytest.approx(oracle.variance(1.5, 1_000, 3))

    def test_invalid_epsilon_rejected(self, name):
        oracle = get_oracle(name)
        with pytest.raises(InvalidParameterError):
            oracle.perturb(np.array([0, 1]), 3, -0.5)

    def test_seeded_determinism(self, name):
        oracle = get_oracle(name)
        values = np.arange(100) % 4
        a = oracle.perturb(values, 4, 1.0, rng=np.random.default_rng(42))
        b = oracle.perturb(values, 4, 1.0, rng=np.random.default_rng(42))
        assert np.array_equal(a, b)
