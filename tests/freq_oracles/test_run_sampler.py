"""Tests for the order-preserving run samplers (sample_aggregate_run).

Unlike :meth:`sample_aggregate_batch` (distributionally exact, free to
reorder draws), every oracle's run sampler must be **bit-identical** to
sequential :meth:`sample_aggregate` calls on the same generator — this
is the contract the chunked ingestion engine builds on.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles import available_oracles, get_oracle

ALL_ORACLES = sorted(available_oracles())


def _counts(rng, batch=32, domain=9, n=4000):
    return rng.multinomial(n, rng.dirichlet(np.ones(domain)), size=batch)


class TestBitIdentity:
    @pytest.mark.parametrize("name", ALL_ORACLES)
    @pytest.mark.parametrize("epsilon", [0.4, 1.0, 2.7])
    def test_run_equals_sequential_rounds(self, name, epsilon, rng):
        oracle = get_oracle(name)
        counts = _counts(rng)
        run = oracle.sample_aggregate_run(
            counts, epsilon, rng=np.random.default_rng(123)
        )
        loop_rng = np.random.default_rng(123)
        rounds = np.stack(
            [
                oracle.sample_aggregate(row, epsilon, rng=loop_rng).frequencies
                for row in counts
            ]
        )
        assert np.array_equal(run, rounds)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_mixed_row_totals_stay_identical(self, name):
        oracle = get_oracle(name)
        counts = np.array([[50, 25, 25], [5000, 2500, 2500], [1, 1, 1]])
        run = oracle.sample_aggregate_run(
            counts, 1.0, rng=np.random.default_rng(9)
        )
        loop_rng = np.random.default_rng(9)
        rounds = np.stack(
            [
                oracle.sample_aggregate(row, 1.0, rng=loop_rng).frequencies
                for row in counts
            ]
        )
        assert np.array_equal(run, rounds)

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_generator_left_in_same_state(self, name, rng):
        """Downstream draws after a run match downstream draws after
        the equivalent loop — nothing is over- or under-consumed."""
        oracle = get_oracle(name)
        counts = _counts(rng, batch=7, domain=5)
        run_rng = np.random.default_rng(77)
        oracle.sample_aggregate_run(counts, 1.3, rng=run_rng)
        loop_rng = np.random.default_rng(77)
        for row in counts:
            oracle.sample_aggregate(row, 1.3, rng=loop_rng)
        assert np.array_equal(run_rng.integers(0, 1 << 30, 8),
                              loop_rng.integers(0, 1 << 30, 8))


class TestShapesAndErrors:
    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_empty_run(self, name, rng):
        out = get_oracle(name).sample_aggregate_run(
            np.empty((0, 5), dtype=np.int64), 1.0, rng=rng
        )
        assert out.shape == (0, 5)
        assert out.dtype == np.float64

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_rejects_non_matrix(self, name, rng):
        with pytest.raises(InvalidParameterError):
            get_oracle(name).sample_aggregate_run(
                np.array([1, 2, 3]), 1.0, rng=rng
            )

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_rejects_zero_report_row(self, name, rng):
        with pytest.raises(InvalidParameterError):
            get_oracle(name).sample_aggregate_run(
                np.array([[2, 3], [0, 0]]), 1.0, rng=rng
            )

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_rejects_negative_counts(self, name, rng):
        with pytest.raises(InvalidParameterError):
            get_oracle(name).sample_aggregate_run(
                np.array([[3, -1]]), 1.0, rng=rng
            )
