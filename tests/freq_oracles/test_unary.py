"""Unit tests for the unary-encoding oracles OUE and SUE."""

import math

import numpy as np
import pytest

from repro.freq_oracles import OUE, SUE, oue_probabilities, sue_probabilities
from repro.freq_oracles.variance import oue_mean_variance, sue_mean_variance


class TestOUEProbabilities:
    def test_p_is_half(self):
        p, _ = oue_probabilities(1.0)
        assert p == 0.5

    def test_q_formula(self):
        _, q = oue_probabilities(1.0)
        assert q == pytest.approx(1.0 / (math.exp(1.0) + 1.0))

    def test_privacy_ratio(self):
        # The worst-case likelihood ratio for a single bit is
        # p(1-q) / (q(1-p)) = e^eps.
        p, q = oue_probabilities(1.4)
        assert (p * (1 - q)) / (q * (1 - p)) == pytest.approx(math.exp(1.4))


class TestSUEProbabilities:
    def test_symmetric(self):
        p, q = sue_probabilities(2.0)
        assert p + q == pytest.approx(1.0)

    def test_ratio_is_half_budget(self):
        p, q = sue_probabilities(2.0)
        assert p / q == pytest.approx(math.exp(1.0))


@pytest.mark.parametrize("oracle_cls", [OUE, SUE])
class TestUnaryOracles:
    def test_perturb_shape(self, oracle_cls, rng):
        oracle = oracle_cls()
        values = rng.integers(0, 6, size=100)
        bits = oracle.perturb(values, 6, 1.0, rng=rng)
        assert bits.shape == (100, 6)
        assert bits.dtype == bool

    def test_aggregate_unbiased(self, oracle_cls, rng):
        oracle = oracle_cls()
        true = np.array([0.6, 0.25, 0.15])
        values = rng.choice(3, size=40_000, p=true)
        bits = oracle.perturb(values, 3, 1.0, rng=rng)
        estimate = oracle.aggregate(bits, 3, 1.0)
        empirical = np.bincount(values, minlength=3) / values.size
        assert np.allclose(estimate.frequencies, empirical, atol=0.03)

    def test_sample_aggregate_unbiased(self, oracle_cls, rng):
        oracle = oracle_cls()
        true_counts = np.array([6_000, 2_500, 1_500])
        estimates = np.array(
            [
                oracle.sample_aggregate(true_counts, 1.0, rng=rng).frequencies
                for _ in range(200)
            ]
        )
        assert np.allclose(estimates.mean(axis=0), [0.6, 0.25, 0.15], atol=0.01)

    def test_sample_matches_per_user(self, oracle_cls):
        oracle = oracle_cls()
        true_counts = np.array([400, 400, 200])
        values = np.repeat(np.arange(3), true_counts)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(6)
        fast = np.array(
            [
                oracle.sample_aggregate(true_counts, 1.0, rng=rng_a).frequencies
                for _ in range(300)
            ]
        )
        slow = np.array(
            [
                oracle.aggregate(
                    oracle.perturb(values, 3, 1.0, rng=rng_b), 3, 1.0
                ).frequencies
                for _ in range(300)
            ]
        )
        assert np.allclose(fast.mean(axis=0), slow.mean(axis=0), atol=0.03)
        assert np.allclose(fast.std(axis=0), slow.std(axis=0), rtol=0.3)

    def test_rejects_bad_report_shape(self, oracle_cls, rng):
        oracle = oracle_cls()
        with pytest.raises(ValueError):
            oracle.aggregate(rng.random((10, 3)) < 0.5, 4, 1.0)


class TestVarianceOrdering:
    def test_oue_beats_sue(self):
        """OUE's optimised q strictly improves on symmetric flipping."""
        for eps in (0.5, 1.0, 2.0):
            assert oue_mean_variance(eps, 1_000, 10) < sue_mean_variance(
                eps, 1_000, 10
            )

    def test_oue_variance_empirical(self, rng):
        n, d, eps = 20_000, 8, 1.0
        oracle = OUE()
        true_counts = np.zeros(d, dtype=int)
        true_counts[0] = n
        estimates = np.array(
            [
                oracle.sample_aggregate(true_counts, eps, rng=rng).frequencies[1:]
                for _ in range(300)
            ]
        )
        empirical = float(estimates.var(axis=0).mean())
        assert empirical == pytest.approx(oue_mean_variance(eps, n, d), rel=0.2)
