"""Unit tests for closed-form FO variances (Eq. 2 and friends)."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles.variance import (
    grr_cell_variance,
    grr_mean_variance,
    laplace_mean_variance,
    olh_mean_variance,
    oue_mean_variance,
    sue_mean_variance,
)


class TestGRRVariance:
    def test_eq2_leading_term(self):
        eps, n, d = 1.0, 1_000, 2
        e = math.exp(eps)
        expected = (d - 2 + e) / (n * (e - 1) ** 2)
        assert grr_cell_variance(eps, n, d, frequency=0.0) == pytest.approx(expected)

    def test_frequency_term(self):
        eps, n, d, f = 1.0, 1_000, 5, 0.3
        e = math.exp(eps)
        base = grr_cell_variance(eps, n, d, frequency=0.0)
        extra = f * (d - 2) / (n * (e - 1))
        assert grr_cell_variance(eps, n, d, frequency=f) == pytest.approx(base + extra)

    def test_mean_variance_between_extremes(self):
        """Mean over cells lies between the f=0 cell and the f=1 cell."""
        eps, n, d = 1.0, 1_000, 10
        low = grr_cell_variance(eps, n, d, frequency=0.0)
        high = grr_cell_variance(eps, n, d, frequency=1.0)
        mid = grr_mean_variance(eps, n, d)
        assert low < mid < high

    def test_binary_domain_mean_equals_cell(self):
        """For d=2 the f_k term vanishes."""
        assert grr_mean_variance(1.0, 500, 2) == pytest.approx(
            grr_cell_variance(1.0, 500, 2, frequency=0.5)
        )

    def test_decreases_with_n(self):
        assert grr_mean_variance(1.0, 2_000, 5) < grr_mean_variance(1.0, 1_000, 5)

    def test_decreases_with_epsilon(self):
        assert grr_mean_variance(2.0, 1_000, 5) < grr_mean_variance(1.0, 1_000, 5)

    def test_increases_with_domain(self):
        assert grr_mean_variance(1.0, 1_000, 50) > grr_mean_variance(1.0, 1_000, 5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            grr_mean_variance(0.0, 100, 4)
        with pytest.raises(InvalidParameterError):
            grr_mean_variance(1.0, 0, 4)
        with pytest.raises(InvalidParameterError):
            grr_mean_variance(1.0, 100, 1)


class TestBudgetVsPopulationSensitivity:
    """The asymmetry that motivates Section 6.1: V is much more sensitive
    to the budget than to the population."""

    def test_population_split_is_linear(self):
        eps, n, d, w = 1.0, 10_000, 2, 10
        full = grr_mean_variance(eps, n, d)
        split = grr_mean_variance(eps, n // w, d)
        assert split == pytest.approx(w * full, rel=1e-6)

    def test_budget_split_is_superlinear(self):
        eps, n, d, w = 1.0, 10_000, 2, 10
        full = grr_mean_variance(eps, n, d)
        split = grr_mean_variance(eps / w, n, d)
        assert split > 5 * w * full  # dramatically worse than linear

    def test_theorem_6_1_inequality_grr(self):
        """V(eps, N/w) < V(eps/w, N) for every tested configuration."""
        for eps in (0.5, 1.0, 2.0):
            for w in (2, 10, 50):
                for d in (2, 5, 117):
                    n = 100_000
                    assert grr_mean_variance(eps, n // w, d) < grr_mean_variance(
                        eps / w, n, d
                    )

    def test_theorem_6_1_inequality_oue(self):
        for eps in (0.5, 1.0, 2.0):
            for w in (2, 10, 50):
                n = 100_000
                assert oue_mean_variance(eps, n // w, 10) < oue_mean_variance(
                    eps / w, n, 10
                )


class TestOtherOracles:
    def test_oue_independent_of_domain(self):
        assert oue_mean_variance(1.0, 1_000, 2) == oue_mean_variance(1.0, 1_000, 200)

    def test_olh_matches_oue(self):
        assert olh_mean_variance(1.0, 1_000, 10) == oue_mean_variance(1.0, 1_000, 10)

    def test_sue_formula(self):
        eps, n = 1.0, 1_000
        s = math.exp(eps / 2)
        p, q = s / (s + 1), 1 / (s + 1)
        expected = q * (1 - q) / (n * (p - q) ** 2)
        assert sue_mean_variance(eps, n, 7) == pytest.approx(expected)

    def test_laplace_variance(self):
        # Var(Lap(b)) = 2 b^2, divided by n^2 for frequencies.
        assert laplace_mean_variance(1.0, 100) == pytest.approx(
            2 * (2.0 / 1.0) ** 2 / 100**2
        )

    def test_laplace_rejects_bad_input(self):
        with pytest.raises(InvalidParameterError):
            laplace_mean_variance(0.0, 100)
