"""Edge-case integration tests: boundary parameters across the stack."""

import numpy as np
import pytest

from repro.engine import run_stream
from repro.exceptions import InvalidParameterError
from repro.mechanisms import ALL_METHODS
from repro.streams import BinaryStream, MaterializedStream, make_lns


class TestWindowBoundaries:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_window_of_one(self, method):
        """w = 1: every timestamp is its own window; all methods valid."""
        stream = make_lns(n_users=2_000, horizon=12, seed=2)
        result = run_stream(method, stream, epsilon=1.0, window=1, seed=2)
        assert result.horizon == 12
        assert result.max_window_spend <= 1.0 + 1e-9

    @pytest.mark.parametrize("method", ["LBU", "LSP", "LBD", "LBA"])
    def test_window_larger_than_horizon(self, method):
        """w > T: a single (incomplete) window spans the whole run."""
        stream = make_lns(n_users=4_000, horizon=10, seed=2)
        result = run_stream(method, stream, epsilon=1.0, window=25, seed=2)
        assert result.max_window_spend <= 1.0 + 1e-9

    def test_population_window_larger_than_horizon(self):
        stream = make_lns(n_users=4_000, horizon=10, seed=2)
        for method in ("LPU", "LPD", "LPA"):
            result = run_stream(method, stream, epsilon=1.0, window=25, seed=2)
            assert result.max_window_spend <= 1.0 + 1e-9


class TestExtremeBudgets:
    def test_tiny_epsilon_still_valid(self, small_binary_stream):
        result = run_stream(
            "LPA", small_binary_stream, epsilon=0.05, window=5, seed=1
        )
        assert np.isfinite(result.releases).all()
        assert result.max_window_spend <= 0.05 + 1e-9

    def test_huge_epsilon_near_exact(self):
        stream = make_lns(n_users=5_000, horizon=20, seed=3)
        result = run_stream("LPU", stream, epsilon=50.0, window=4, seed=3)
        # With eps = 50 GRR is essentially truthful; only sampling error
        # from the N/w group remains.
        error = np.abs(result.releases - result.true_frequencies).mean()
        assert error < 0.02


class TestPopulationBoundaries:
    def test_minimum_viable_population(self):
        """N = 2w is the smallest population LPD/LPA accept."""
        w = 4
        stream = BinaryStream(np.full(3 * w, 0.5), n_users=2 * w, seed=1)
        for method in ("LPD", "LPA"):
            result = run_stream(method, stream, epsilon=1.0, window=w, seed=1)
            assert result.horizon == 3 * w

    def test_below_minimum_rejected(self):
        w = 4
        stream = BinaryStream(np.full(8, 0.5), n_users=2 * w - 1, seed=1)
        for method in ("LPD", "LPA"):
            with pytest.raises(InvalidParameterError):
                run_stream(method, stream, epsilon=1.0, window=w, seed=1)

    def test_population_not_divisible_by_window(self):
        stream = BinaryStream(np.full(15, 0.3), n_users=1_003, seed=1)
        result = run_stream("LPU", stream, epsilon=1.0, window=7, seed=1)
        sizes = {r.publication_users for r in result.records}
        assert sizes <= {1_003 // 7, 1_003 // 7 + 1}
        assert result.max_window_spend <= 1.0 + 1e-9


class TestDomainBoundaries:
    def test_single_timestep_stream(self):
        stream = BinaryStream(np.array([0.4]), n_users=1_000, seed=1)
        for method in ALL_METHODS:
            result = run_stream(method, stream, epsilon=1.0, window=3, seed=1)
            assert result.horizon == 1

    def test_large_domain(self, rng):
        values = rng.integers(0, 117, size=(8, 2_000))
        stream = MaterializedStream(values, domain_size=117)
        result = run_stream("LPA", stream, epsilon=1.0, window=4, seed=1)
        assert result.releases.shape == (8, 117)

    def test_all_users_same_value(self):
        stream = BinaryStream(np.full(10, 1.0), n_users=1_000, seed=1)
        result = run_stream("LPU", stream, epsilon=2.0, window=5, seed=1)
        assert result.releases[:, 1].mean() > 0.9


class TestOracleEdgeCases:
    @pytest.mark.parametrize("oracle", ["grr", "oue", "olh", "sue", "hr"])
    def test_degenerate_counts(self, oracle, rng):
        from repro.freq_oracles import get_oracle

        o = get_oracle(oracle)
        # All mass on one value.
        est = o.sample_aggregate(np.array([100, 0, 0]), 1.0, rng=rng)
        assert est.frequencies.argmax() == 0

    @pytest.mark.parametrize("oracle", ["grr", "oue", "olh", "sue", "hr"])
    def test_single_report(self, oracle, rng):
        from repro.freq_oracles import get_oracle

        o = get_oracle(oracle)
        est = o.sample_aggregate(np.array([1, 0]), 1.0, rng=rng)
        assert est.n_reports == 1
        assert np.isfinite(est.frequencies).all()
