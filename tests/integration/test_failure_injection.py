"""Failure injection: deliberately broken mechanisms must fail loudly.

The engine's claim is that privacy bugs cannot pass silently: the
accountant (budget) and the user pool (participation) enforce the
``w``-event LDP invariants at runtime.  These tests implement realistic
bugs — the kind a port of Algorithms 1-4 could introduce — and assert the
engine catches each one.
"""

import numpy as np
import pytest

from repro.engine import run_stream
from repro.engine.collector import TimestepContext
from repro.engine.records import STRATEGY_PUBLISH, StepRecord
from repro.exceptions import (
    InvalidParameterError,
    PopulationExhaustedError,
    PrivacyViolationError,
)
from repro.mechanisms.base import StreamMechanism


class OverspendingUniform(StreamMechanism):
    """Bug: forgets to divide by w — spends eps at every timestamp."""

    name = "BROKEN-LBU"
    framework = "budget"

    def step(self, ctx: TimestepContext) -> StepRecord:
        estimate = ctx.collect(self.epsilon)  # should be eps / w
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=self.epsilon,
            reports=estimate.n_reports,
        )


class ForgottenDissimilarityBudget(StreamMechanism):
    """Bug: LBD-style method that books only M2's budget, not M1's."""

    name = "BROKEN-LBD"
    framework = "budget"

    def step(self, ctx: TimestepContext) -> StepRecord:
        # Spends eps/2 on dissimilarity *and* eps/2 on publication at every
        # step: each half alone would be fine; together they overspend by
        # a factor of w.
        ctx.collect(self.epsilon / 2.0)
        estimate = ctx.collect(self.epsilon / 2.0)
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=self.epsilon / 2.0,
            reports=2 * estimate.n_reports,
        )


class DoubleDippingPopulation(StreamMechanism):
    """Bug: LPU-style method that reuses the same group every timestamp."""

    name = "BROKEN-LPU"
    framework = "population"

    def _setup(self):
        self._group = np.arange(self.n_users // self.window)

    def step(self, ctx: TimestepContext) -> StepRecord:
        estimate = ctx.collect(self.epsilon, user_ids=self._group)
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=self.epsilon,
            reports=estimate.n_reports,
        )


class PrematureRecycler(StreamMechanism):
    """Bug: LPD-style method that recycles users after w-2 steps."""

    name = "BROKEN-LPD"
    framework = "population"

    def _setup(self):
        from repro.engine.population import UserPool

        self._pool = UserPool(self.n_users, seed=self.rng)
        self._history = {}

    def step(self, ctx: TimestepContext) -> StepRecord:
        group = self._pool.sample(self.n_users // self.window)
        estimate = ctx.collect(self.epsilon, user_ids=group)
        self._history[ctx.t] = group
        early = ctx.t - self.window + 2  # off-by-one: should be w - 1
        if early >= 0 and early in self._history:
            self._pool.recycle(self._history.pop(early))
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=self.epsilon,
            reports=estimate.n_reports,
        )


class TestBudgetBugsCaught:
    def test_overspending_uniform(self, small_binary_stream):
        with pytest.raises(PrivacyViolationError):
            run_stream(
                OverspendingUniform(),
                small_binary_stream,
                epsilon=1.0,
                window=5,
                seed=0,
            )

    def test_forgotten_dissimilarity_budget(self, small_binary_stream):
        with pytest.raises(PrivacyViolationError):
            run_stream(
                ForgottenDissimilarityBudget(),
                small_binary_stream,
                epsilon=1.0,
                window=5,
                seed=0,
            )

    def test_unenforced_mode_records_the_violation(self, small_binary_stream):
        result = run_stream(
            OverspendingUniform(),
            small_binary_stream,
            epsilon=1.0,
            window=5,
            seed=0,
            enforce_privacy=False,
        )
        # The diagnostic shows exactly how badly the bug overspends: w x.
        assert result.max_window_spend == pytest.approx(5.0)


class TestPopulationBugsCaught:
    def test_double_dipping_group(self, small_binary_stream):
        with pytest.raises(PrivacyViolationError):
            run_stream(
                DoubleDippingPopulation(),
                small_binary_stream,
                epsilon=1.0,
                window=5,
                seed=0,
            )

    def test_premature_recycling(self, small_binary_stream):
        with pytest.raises((PrivacyViolationError, PopulationExhaustedError)):
            run_stream(
                PrematureRecycler(),
                small_binary_stream,
                epsilon=1.0,
                window=5,
                seed=0,
            )


class TestMechanismContractViolations:
    def test_wrong_timestamp_record_rejected(self, small_binary_stream):
        class WrongT(StreamMechanism):
            name = "WRONG-T"

            def step(self, ctx):
                estimate = ctx.collect(self.epsilon / self.window)
                return StepRecord(
                    t=ctx.t + 1,  # bug
                    release=estimate.frequencies,
                    strategy=STRATEGY_PUBLISH,
                )

        with pytest.raises(InvalidParameterError):
            run_stream(WrongT(), small_binary_stream, epsilon=1.0, window=5, seed=0)
