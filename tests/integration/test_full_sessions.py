"""Integration: every mechanism × every dataset family × every oracle."""

import numpy as np
import pytest

from repro.engine import run_stream
from repro.experiments import make_dataset
from repro.mechanisms import ALL_METHODS


@pytest.mark.parametrize("method", ALL_METHODS + ("LPF",))
@pytest.mark.parametrize("dataset", ["LNS", "Taxi", "Foursquare"])
class TestMechanismDatasetMatrix:
    def test_session_completes_with_privacy(self, method, dataset):
        stream = make_dataset(dataset, size="smoke", seed=5)
        result = run_stream(method, stream, epsilon=1.0, window=5, seed=5)
        assert result.horizon == stream.horizon
        assert np.isfinite(result.releases).all()
        assert result.max_window_spend <= 1.0 + 1e-9
        assert result.total_reports > 0


@pytest.mark.parametrize("oracle", ["grr", "oue", "olh", "sue"])
class TestOracleMatrix:
    def test_all_oracles_drive_adaptive_methods(self, oracle, small_binary_stream):
        for method in ("LBA", "LPA"):
            result = run_stream(
                method,
                small_binary_stream,
                epsilon=1.0,
                window=5,
                oracle=oracle,
                seed=2,
            )
            assert result.oracle == oracle
            assert result.max_window_spend <= 1.0 + 1e-9


class TestLongRun:
    """Infinite-stream behaviour: state stays bounded over many windows."""

    @pytest.mark.parametrize("method", ["LBD", "LBA", "LPD", "LPA"])
    def test_many_windows(self, method):
        stream = make_dataset("Sin", n_users=2_000, horizon=240, seed=9)
        result = run_stream(method, stream, epsilon=1.0, window=8, seed=9)
        assert result.horizon == 240
        assert result.max_window_spend <= 1.0 + 1e-9
        # The mechanism keeps publishing throughout, not only at the start.
        publish_ts = [r.t for r in result.records if r.strategy == "publish"]
        assert publish_ts and publish_ts[-1] > 120

    def test_population_pool_never_exhausts_over_long_horizon(self):
        stream = make_dataset("LNS", n_users=1_000, horizon=300, seed=3)
        result = run_stream("LPA", stream, epsilon=2.0, window=6, seed=3)
        assert result.horizon == 300
