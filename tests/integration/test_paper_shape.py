"""Integration tests asserting the paper's headline results hold in shape.

These are the claims a reader takes away from Section 7, checked on scaled
workloads:

1. Population division beats budget division on utility (Figs. 4-5).
2. Error decreases with epsilon and increases with w (Figs. 4-5).
3. Error decreases with population N (Fig. 6a/b).
4. Adaptive population methods beat budget methods on communication, with
   LPD/LPA below LPU's 1/w and LBD/LBA above 1 (Table 2, Fig. 8).
5. LBA stays usable as w grows while LBD degrades toward/below LBU
   (Fig. 5 discussion).
"""

import numpy as np
import pytest

from repro.engine import run_stream
from repro.experiments import evaluate
from repro.streams import make_lns, make_sin


def mre_of(method, stream, epsilon, window, seed=0, repeats=3):
    return evaluate(
        method, stream, epsilon, window, seed=seed, repeats=repeats
    ).mre


@pytest.fixture(scope="module")
def lns_stream():
    return make_lns(n_users=20_000, horizon=120, seed=21)


@pytest.fixture(scope="module")
def sin_stream():
    return make_sin(n_users=20_000, horizon=120, seed=21)


class TestPopulationBeatsBudget:
    @pytest.mark.parametrize(
        "budget_method,population_method",
        [("LBU", "LPU"), ("LBD", "LPD"), ("LBA", "LPA")],
    )
    def test_pairwise_on_lns(self, lns_stream, budget_method, population_method):
        budget = mre_of(budget_method, lns_stream, 1.0, 20)
        population = mre_of(population_method, lns_stream, 1.0, 20)
        assert population < budget, (
            f"{population_method} ({population:.3f}) should beat "
            f"{budget_method} ({budget:.3f})"
        )

    def test_family_gap_is_large(self, lns_stream):
        """The paper reports multi-x gaps between the families."""
        lbu = mre_of("LBU", lns_stream, 1.0, 20)
        lpa = mre_of("LPA", lns_stream, 1.0, 20)
        assert lpa < lbu / 2


class TestTrends:
    def test_error_decreases_with_epsilon(self, lns_stream):
        for method in ("LBU", "LPU", "LPA"):
            low = mre_of(method, lns_stream, 0.5, 20)
            high = mre_of(method, lns_stream, 2.5, 20)
            assert high < low, f"{method} MRE should fall as eps grows"

    def test_error_increases_with_window(self, sin_stream):
        for method in ("LBU", "LPU"):
            small = mre_of(method, sin_stream, 1.0, 10)
            large = mre_of(method, sin_stream, 1.0, 50)
            assert large > small, f"{method} MRE should grow with w"

    def test_error_decreases_with_population(self):
        small = make_lns(n_users=5_000, horizon=80, seed=4)
        large = make_lns(n_users=40_000, horizon=80, seed=4)
        for method in ("LPU", "LPA"):
            assert mre_of(method, large, 1.0, 20) < mre_of(method, small, 1.0, 20)


class TestCommunicationShape:
    def test_cfpu_ordering(self, lns_stream):
        """LPA < LPD < LPU = LSP = 1/w << 1 = LBU < LBA < LBD."""
        w = 20
        cells = {
            m: evaluate(m, lns_stream, 1.0, w, seed=1) for m in (
                "LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"
            )
        }
        assert cells["LBU"].cfpu == pytest.approx(1.0)
        assert cells["LSP"].cfpu == pytest.approx(1 / w, rel=0.05)
        assert cells["LPU"].cfpu == pytest.approx(1 / w, rel=0.05)
        assert cells["LBD"].cfpu > 1.0
        assert cells["LBA"].cfpu > 1.0
        assert cells["LBD"].cfpu > cells["LBA"].cfpu  # LBD publishes more
        assert cells["LPD"].cfpu < 1 / w + 1e-9
        assert cells["LPA"].cfpu < cells["LPD"].cfpu  # Table 2 ordering

    def test_population_methods_cut_communication_20x(self, lns_stream):
        lba = evaluate("LBA", lns_stream, 1.0, 20, seed=1).cfpu
        lpa = evaluate("LPA", lns_stream, 1.0, 20, seed=1).cfpu
        assert lba / lpa > 20


class TestWindowGrowthBehaviour:
    def test_lba_more_robust_than_lbd_at_large_w(self, sin_stream):
        """Fig. 5: with large w, LBD's exponential decay hurts it; LBA
        stays closer to (or better than) LBU."""
        w = 50
        lbd = mre_of("LBD", sin_stream, 1.0, w)
        lba = mre_of("LBA", sin_stream, 1.0, w)
        assert lba < lbd


class TestEventMonitoringShape:
    def test_adaptive_population_detects_better_than_lsp(self):
        """Fig. 7 discussion: LSP's fixed sampling hinders real-time
        detection; the adaptive population methods beat it."""
        from repro.analysis import monitoring_roc

        # Paper setting: w = 50, and a stream that moves fast enough that
        # LSP's once-per-window snapshots go stale between samples.
        stream = make_lns(n_users=40_000, horizon=300, q_std=0.008, seed=13)
        aucs = {}
        for method in ("LSP", "LPA"):
            scores = []
            for seed in range(3):
                result = run_stream(method, stream, epsilon=1.0, window=50, seed=seed)
                scores.append(
                    monitoring_roc(result.releases, result.true_frequencies).auc
                )
            aucs[method] = np.mean(scores)
        assert aucs["LPA"] > aucs["LSP"]
