"""Failure paths of durable ``repro serve --state-dir``, end to end.

Real subprocesses, real SIGKILLs, real fsync'd WALs: these tests drive
the served process the way an operator's supervisor would and assert the
state directory stays consistent through every failure mode — malformed
input lines, hand-corrupted WALs, EOF mid-chunk, and kill -9 mid-chunk.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.exceptions import WALError
from repro.persist import replay_wal

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _serve_cmd(state_dir, *, chunk=3, extra=()):
    return [
        sys.executable, "-m", "repro", "serve",
        "--method", "LBD", "--oracle", "grr",
        "--domain-size", "4", "--epsilon", "1", "--window", "4",
        "--seed", "11", "--chunk", str(chunk), "--capacity", "0",
        "--state-dir", str(state_dir), "--checkpoint-every", "1",
        *extra,
    ]


def _ingests(n, seed=5, n_users=40, domain=4):
    rng = np.random.default_rng(seed)
    return [
        json.dumps(
            {"op": "ingest",
             "values": rng.integers(0, domain, n_users).tolist()}
        )
        for _ in range(n)
    ]


def _run(cmd, lines):
    return subprocess.run(
        cmd,
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        env=_env(),
        check=False,
    )


def _wal_path(state_dir):
    return Path(state_dir) / "releases.wal"


class TestMalformedInput:
    def test_malformed_lines_leave_wal_consistent(self, tmp_path):
        """Garbage request lines produce error responses but never a
        hole in the WAL: every ingested timestamp is logged exactly
        once and the log replays cleanly."""
        state = tmp_path / "state"
        feed = _ingests(4)
        feed.insert(2, "{not json}")
        feed.insert(4, json.dumps({"op": "mystery"}))
        proc = _run(_serve_cmd(state), feed)
        assert proc.returncode == 0, proc.stderr
        out = [json.loads(line) for line in proc.stdout.splitlines()]
        assert sum("error" in obj for obj in out) == 2
        rows, watermark = replay_wal(_wal_path(state))
        assert watermark == 4
        assert [row["t"] for row in rows] == [0, 1, 2, 3]

    def test_bad_ingest_values_do_not_advance_wal(self, tmp_path):
        """An ingest whose values fail validation is rejected without
        being logged; subsequent good ingests land at the right t."""
        state = tmp_path / "state"
        feed = _ingests(3)
        feed.insert(1, json.dumps({"op": "ingest", "values": [999, -1]}))
        proc = _run(_serve_cmd(state), feed)
        assert proc.returncode == 0, proc.stderr
        rows, watermark = replay_wal(_wal_path(state))
        assert watermark == 3
        assert [row["t"] for row in rows] == [0, 1, 2]


class TestCorruptStateDir:
    def _seed_state(self, state):
        proc = _run(_serve_cmd(state), _ingests(6))
        assert proc.returncode == 0, proc.stderr

    def test_out_of_order_wal_fails_resume_with_clear_error(self, tmp_path):
        state = tmp_path / "state"
        self._seed_state(state)
        wal = _wal_path(state)
        lines = wal.read_text().splitlines()
        rows = [json.loads(line) for line in lines
                if json.loads(line)["op"] == "release"]
        rows[0], rows[1] = rows[1], rows[0]
        wal.write_text(
            "".join(json.dumps(row) + "\n" for row in rows)
            + json.dumps({"op": "commit", "watermark": 6}) + "\n"
        )
        proc = _run(_serve_cmd(state), _ingests(6))
        assert proc.returncode == 2
        assert "out-of-order" in proc.stderr

    def test_garbage_in_committed_prefix_fails_resume(self, tmp_path):
        state = tmp_path / "state"
        self._seed_state(state)
        wal = _wal_path(state)
        wal.write_text("garbage\n" + json.dumps(
            {"op": "commit", "watermark": 1}) + "\n")
        proc = _run(_serve_cmd(state), _ingests(6))
        assert proc.returncode == 2
        assert "undecodable" in proc.stderr

    def test_wal_behind_checkpoint_fails_resume(self, tmp_path):
        state = tmp_path / "state"
        self._seed_state(state)
        _wal_path(state).write_text(
            json.dumps({"op": "commit", "watermark": 1}) + "\n"
        )
        proc = _run(_serve_cmd(state), _ingests(6))
        assert proc.returncode == 2
        assert "behind the checkpoint" in proc.stderr


class TestMidChunkEOF:
    def test_eof_mid_chunk_flushes_and_resumes(self, tmp_path):
        """EOF with a partially filled chunk (7 ingests, chunk 3) still
        commits every ingested timestamp; a restart picks up at t=7."""
        state = tmp_path / "state"
        feed = _ingests(7)
        proc = _run(_serve_cmd(state), feed)
        assert proc.returncode == 0, proc.stderr
        rows, watermark = replay_wal(_wal_path(state))
        assert watermark == 7
        assert [row["t"] for row in rows] == list(range(7))

        # Restart with the same 7 lines plus 2 new ones: the replayed 7
        # are acked as skipped, the new ones ingest at t=7, t=8.
        proc = _run(_serve_cmd(state), feed + _ingests(2, seed=99))
        assert proc.returncode == 0, proc.stderr
        out = [json.loads(line) for line in proc.stdout.splitlines()]
        skipped = [obj for obj in out if obj.get("skipped")]
        assert [obj["t"] for obj in skipped] == list(range(7))
        fresh = [obj for obj in out
                 if obj.get("op") == "ingest" and not obj.get("skipped")]
        assert [obj["t"] for obj in fresh] == [7, 8]
        rows, watermark = replay_wal(_wal_path(state))
        assert watermark == 9
        assert [row["t"] for row in rows] == list(range(9))


class TestSigkillMidChunk:
    def test_sigkill_mid_chunk_no_duplicate_ingests(self, tmp_path):
        """kill -9 while a chunk is buffered: the WAL keeps only
        committed work, and the restarted server re-ingests the lost
        span exactly once (unique timestamps, full coverage)."""
        state = tmp_path / "state"
        feed = _ingests(11)
        proc = subprocess.Popen(
            _serve_cmd(state),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=_env(),
        )
        assert proc.stdin is not None and proc.stdout is not None
        # Feed 8 lines (two full chunks of 3, two buffered), wait for
        # the acks of the committed chunks, then SIGKILL mid-buffer.
        for line in feed[:8]:
            proc.stdin.write(line + "\n")
            proc.stdin.flush()
        acked = 0
        deadline = time.monotonic() + 20
        while acked < 6 and time.monotonic() < deadline:
            if proc.stdout.readline():
                acked += 1
        assert acked == 6, "server never acked the two full chunks"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

        # Acks print before the chunk's WAL commit, so the kill lands
        # either between the two (watermark 3) or after (watermark 6) —
        # but never inside the buffered third chunk.
        rows, watermark = replay_wal(_wal_path(state))
        assert watermark in (3, 6)
        assert [row["t"] for row in rows] == list(range(watermark))

        resumed = _run(_serve_cmd(state), feed)
        assert resumed.returncode == 0, resumed.stderr
        rows, watermark = replay_wal(_wal_path(state))
        assert watermark == 11
        ts = [row["t"] for row in rows]
        assert ts == sorted(set(ts)) == list(range(11))

    def test_wal_never_torn_beyond_replay(self, tmp_path):
        """Whatever a crash leaves behind, replay_wal either reads it or
        raises WALError — it never returns rows past the last commit."""
        state = tmp_path / "state"
        _run(_serve_cmd(state), _ingests(5))
        wal = _wal_path(state)
        # Simulate a torn final write.
        with wal.open("a") as handle:
            handle.write('{"op": "release", "t": 5, "strategy"')
        rows, watermark = replay_wal(wal)
        assert watermark == 5
        assert [row["t"] for row in rows] == list(range(5))
        # ... and a fresh server resumes over the torn tail.
        proc = _run(_serve_cmd(state), _ingests(5) + _ingests(1, seed=42))
        assert proc.returncode == 0, proc.stderr
        rows, watermark = replay_wal(wal)
        assert watermark == 6


def test_walerror_is_checkpoint_error():
    """Supervisors can catch one exception type for all resume failures."""
    from repro.exceptions import CheckpointError

    assert issubclass(WALError, CheckpointError)
