"""Adaptive chunk kernels must be bit-identical to the per-step loop.

The speculative kernels (LBD/LBA) rewind and replay the shared
generator around publications; the streamlined population kernels
(LPD/LPA) re-issue exactly the per-step draws through hoisted fast
paths.  Either way the contract is total: for every oracle and every
chunking of the horizon, releases, per-record decision fields
(``dis``/``err``/strategy/budgets/group sizes), running counters,
checkpointable state and the final generator position must all equal
the ``observe()`` loop's, byte for byte.

This file is the deep matrix for the four adaptive mechanisms; the
engine-level chunking edge cases (misaligned chunks, stores, groups)
live in tests/engine/test_observe_many.py.
"""

import json

import numpy as np
import pytest

from repro.engine import StreamSession
from repro.streams import MaterializedStream

ADAPTIVE = ("LBD", "LBA", "LPD", "LPA")
ORACLES = ("grr", "oue", "sue", "olh", "hr")

HORIZON = 60
WINDOW = 5
N_USERS = 900
DOMAIN = 6

#: Chunk sizes crossing every interesting boundary: single step, prime
#: misaligned with the window, larger than the speculation lookahead,
#: and one chunk swallowing the whole horizon.
CHUNKS = (1, 7, 64, HORIZON + 10)


def _dataset(seed=31):
    # A drifting stream so the adaptive methods actually alternate
    # between publish / approximate / nullify within the horizon.
    rng = np.random.default_rng(seed)
    values = rng.integers(0, DOMAIN, size=(HORIZON, N_USERS))
    drift = rng.integers(0, DOMAIN, size=N_USERS)
    values[HORIZON // 3 :, : N_USERS // 2] = drift[: N_USERS // 2]
    values[2 * HORIZON // 3 :, N_USERS // 2 :] = drift[N_USERS // 2 :]
    return MaterializedStream(values, domain_size=DOMAIN)


def _session(mechanism, oracle, **kwargs):
    return StreamSession(
        mechanism,
        _dataset(),
        epsilon=1.0,
        window=WINDOW,
        horizon=HORIZON,
        oracle=oracle,
        seed=97,
        **kwargs,
    ).start()


def _run_looped(mechanism, oracle, **kwargs):
    session = _session(mechanism, oracle, **kwargs)
    for t in range(HORIZON):
        session.observe(t)
    return session


def _run_chunked(mechanism, oracle, chunk, **kwargs):
    session = _session(mechanism, oracle, **kwargs)
    t = 0
    while t < HORIZON:
        t += len(session.observe_many(t, chunk))
    return session


def _assert_field_equal(a, b, field, t):
    va, vb = getattr(a, field), getattr(b, field)
    if isinstance(va, float) and np.isnan(va):
        assert np.isnan(vb), f"t={t} {field}: {va} vs {vb}"
    else:
        assert va == vb, f"t={t} {field}: {va} vs {vb}"


def _assert_sessions_identical(a, b):
    ra, rb = a.finalize(), b.finalize()
    assert np.array_equal(ra.releases, rb.releases)
    assert np.array_equal(ra.true_frequencies, rb.true_frequencies)
    assert a.total_reports == b.total_reports
    assert a.max_window_spend == b.max_window_spend
    assert len(ra.records) == len(rb.records)
    for x, y in zip(ra.records, rb.records):
        assert x.t == y.t
        _assert_field_equal(x, y, "strategy", x.t)
        assert np.array_equal(np.asarray(x.release), np.asarray(y.release))
        for field in (
            "publication_epsilon",
            "publication_users",
            "dissimilarity_users",
            "reports",
            "dis",
            "err",
        ):
            _assert_field_equal(x, y, field, x.t)
    # The strongest statement available: both paths leave the shared
    # generator in the same position, so *anything* sampled afterwards
    # agrees too.
    assert a.rng.bit_generator.state == b.rng.bit_generator.state


class TestBitIdentityMatrix:
    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize("oracle", ORACLES)
    @pytest.mark.parametrize("mechanism", ADAPTIVE)
    def test_kernel_matches_loop(self, mechanism, oracle, chunk):
        looped = _run_looped(mechanism, oracle)
        chunked = _run_chunked(mechanism, oracle, chunk)
        _assert_sessions_identical(looped, chunked)

    @pytest.mark.parametrize("mechanism", ADAPTIVE)
    def test_kernel_matches_loop_slow_oracle_path(self, mechanism):
        """fast=False drives the per-round perturb/aggregate path."""
        looped = _run_looped(mechanism, "grr", fast=False)
        chunked = _run_chunked(mechanism, "grr", 13, fast=False)
        _assert_sessions_identical(looped, chunked)

    @pytest.mark.parametrize("mechanism", ADAPTIVE)
    def test_kernel_matches_fallback(self, mechanism):
        """Forcing chunk_kernel=False on the instance must not change
        anything either — kernel, fallback and loop are one behaviour."""
        chunked = _run_chunked(mechanism, "oue", 13)
        session = _session(mechanism, "oue")
        session.mechanism.chunk_kernel = False
        t = 0
        while t < HORIZON:
            t += len(session.observe_many(t, 13))
        _assert_sessions_identical(chunked, session)


class TestAccountingInvariants:
    @pytest.mark.parametrize("mechanism", ADAPTIVE)
    def test_privacy_budget_respected_chunked(self, mechanism):
        session = _run_chunked(mechanism, "oue", 64)
        assert session.max_window_spend <= 1.0 + 1e-9

    @pytest.mark.parametrize("mechanism", ("LBD", "LBA"))
    def test_speculation_hint_not_checkpointed(self, mechanism):
        """_quiet_run is a perf-only hint: it must not leak into
        snapshots (restores start from the default and stay correct)."""
        session = _run_chunked(mechanism, "oue", 64)
        payload = json.loads(json.dumps(session.snapshot()))
        assert "quiet_run" not in json.dumps(payload)


class TestCheckpointMidStream:
    @pytest.mark.parametrize("oracle", ("grr", "olh"))
    @pytest.mark.parametrize("mechanism", ADAPTIVE)
    def test_restore_then_chunk_matches_uninterrupted(self, mechanism, oracle):
        """Snapshot between two chunks, JSON-round-trip, restore, and
        finish with chunked ingestion: equal to one uninterrupted
        chunked run (and therefore, by the matrix above, to the loop)."""
        reference = _run_chunked(mechanism, oracle, 64)

        live = _session(mechanism, oracle)
        live.observe_many(0, 23)
        payload = json.loads(json.dumps(live.snapshot()))
        resumed = StreamSession.restore(payload, _dataset())
        t = 23
        while t < HORIZON:
            t += len(resumed.observe_many(t, 16))
        _assert_sessions_identical(reference, resumed)
