"""Behavioural tests for the budget-division mechanisms (Section 5)."""

import numpy as np
import pytest

from repro.engine import (
    STRATEGY_APPROXIMATE,
    STRATEGY_NULLIFIED,
    STRATEGY_PUBLISH,
    run_stream,
)
from repro.streams import make_step


class TestLBU:
    def test_publishes_every_timestamp(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert all(r.strategy == STRATEGY_PUBLISH for r in result.records)

    def test_budget_per_step_is_eps_over_w(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert all(
            r.publication_epsilon == pytest.approx(0.2) for r in result.records
        )

    def test_cfpu_is_one(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert result.cfpu == pytest.approx(1.0)

    def test_spends_exactly_full_budget(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert result.max_window_spend == pytest.approx(1.0)


class TestLSP:
    def test_one_publication_per_window(self, small_binary_stream):
        w = 8
        result = run_stream("LSP", small_binary_stream, epsilon=1.0, window=w, seed=0)
        publish_ts = [r.t for r in result.records if r.strategy == STRATEGY_PUBLISH]
        assert publish_ts == [t for t in range(small_binary_stream.horizon) if t % w == 0]

    def test_full_budget_at_sampling(self, small_binary_stream):
        result = run_stream("LSP", small_binary_stream, epsilon=1.3, window=5, seed=0)
        pubs = [r for r in result.records if r.strategy == STRATEGY_PUBLISH]
        assert all(r.publication_epsilon == pytest.approx(1.3) for r in pubs)

    def test_approximation_repeats_last_release(self, small_binary_stream):
        result = run_stream("LSP", small_binary_stream, epsilon=1.0, window=5, seed=0)
        for i, record in enumerate(result.records):
            if record.strategy == STRATEGY_APPROXIMATE:
                assert np.array_equal(result.releases[i], result.releases[i - 1])

    def test_cfpu_is_inverse_window(self, small_binary_stream):
        result = run_stream("LSP", small_binary_stream, epsilon=1.0, window=8, seed=0)
        expected = np.ceil(small_binary_stream.horizon / 8) / small_binary_stream.horizon
        assert result.cfpu == pytest.approx(expected)


class TestLBD:
    def test_dissimilarity_round_every_step(self, small_binary_stream):
        result = run_stream("LBD", small_binary_stream, epsilon=1.0, window=5, seed=0)
        n = small_binary_stream.n_users
        assert all(r.dissimilarity_users == n for r in result.records)

    def test_publication_budget_decays_within_window(self, small_binary_stream):
        result = run_stream("LBD", small_binary_stream, epsilon=1.0, window=10, seed=0)
        pubs = [r for r in result.records if r.strategy == STRATEGY_PUBLISH]
        assert pubs, "LBD should publish at least once"
        # First publication gets half the publication half-budget: eps/4.
        assert pubs[0].publication_epsilon == pytest.approx(0.25)

    def test_publication_budget_window_bounded(self, small_binary_stream):
        """Sum of publication budgets in any window stays <= eps/2."""
        w, eps = 6, 1.0
        result = run_stream("LBD", small_binary_stream, epsilon=eps, window=w, seed=0)
        budgets = [r.publication_epsilon for r in result.records]
        for start in range(len(budgets) - w + 1):
            assert sum(budgets[start : start + w]) <= eps / 2 + 1e-9

    def test_strategies_are_publish_or_approximate(self, small_binary_stream):
        result = run_stream("LBD", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert all(
            r.strategy in (STRATEGY_PUBLISH, STRATEGY_APPROXIMATE)
            for r in result.records
        )

    def test_dis_and_err_recorded(self, small_binary_stream):
        result = run_stream("LBD", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert all(np.isfinite(r.dis) for r in result.records)


class TestLBA:
    def test_nullification_follows_absorption(self, small_binary_stream):
        """After a publication that absorbed k units, k-1... timestamps
        are nullified (Alg. 2 lines 4-6)."""
        w = 5
        result = run_stream("LBA", small_binary_stream, epsilon=1.0, window=w, seed=0)
        unit = 1.0 / (2 * w)
        for i, record in enumerate(result.records):
            if record.strategy == STRATEGY_PUBLISH:
                absorbed_units = round(record.publication_epsilon / unit)
                expected_nullified = absorbed_units - 1
                following = result.records[i + 1 : i + 1 + expected_nullified]
                assert all(r.strategy == STRATEGY_NULLIFIED for r in following)

    def test_publication_budget_window_bounded(self, small_binary_stream):
        w, eps = 6, 1.0
        result = run_stream("LBA", small_binary_stream, epsilon=eps, window=w, seed=0)
        budgets = [r.publication_epsilon for r in result.records]
        for start in range(len(budgets) - w + 1):
            assert sum(budgets[start : start + w]) <= eps / 2 + 1e-9

    def test_absorption_capped_at_window(self, constant_stream):
        """Publication budget never exceeds w units = eps/2."""
        result = run_stream("LBA", constant_stream, epsilon=1.0, window=5, seed=0)
        assert all(r.publication_epsilon <= 0.5 + 1e-12 for r in result.records)

    def test_m1_runs_even_when_nullified(self, small_binary_stream):
        result = run_stream("LBA", small_binary_stream, epsilon=1.0, window=5, seed=0)
        n = small_binary_stream.n_users
        nullified = [r for r in result.records if r.strategy == STRATEGY_NULLIFIED]
        assert all(r.dissimilarity_users == n for r in nullified)


class TestAdaptivityOnStepStream:
    """On a square-wave stream, the adaptive methods should publish around
    level changes and approximate within flat segments."""

    @pytest.mark.parametrize("method", ["LBD", "LBA"])
    def test_publishes_near_changes(self, method):
        stream = make_step(
            n_users=20_000, horizon=60, low=0.05, high=0.35, period=20, seed=4
        )
        result = run_stream(method, stream, epsilon=2.0, window=5, seed=1)
        publish_ts = {r.t for r in result.records if r.strategy == STRATEGY_PUBLISH}
        # Level changes happen at t = 20 and t = 40.
        for change in (20, 40):
            assert any(
                abs(t - change) <= 3 for t in publish_ts
            ), f"{method} missed the change at t={change}"
