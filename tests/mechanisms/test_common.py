"""Unit tests for the shared dissimilarity estimator (Theorem 5.2)."""

import numpy as np
import pytest

from repro.freq_oracles import GRR, FOEstimate
from repro.mechanisms import estimate_dissimilarity, true_dissimilarity


class TestTrueDissimilarity:
    def test_zero_for_identical(self):
        c = np.array([0.4, 0.6])
        assert true_dissimilarity(c, c) == 0.0

    def test_mean_square_distance(self):
        assert true_dissimilarity(
            np.array([0.5, 0.5]), np.array([0.3, 0.7])
        ) == pytest.approx(0.04)


class TestEstimateDissimilarity:
    def test_bias_correction_subtracts_variance(self):
        estimate = FOEstimate(
            frequencies=np.array([0.5, 0.5]),
            n_reports=100,
            epsilon=1.0,
            variance=0.01,
        )
        last = np.array([0.5, 0.5])
        # Raw squared distance is 0; corrected estimate is -variance.
        assert estimate_dissimilarity(estimate, last) == pytest.approx(-0.01)

    def test_unbiasedness_empirical(self, rng):
        """E[dis] == dis* over repeated FO draws (Theorem 5.2)."""
        oracle = GRR()
        n, d, eps = 5_000, 2, 1.0
        true_counts = np.array([3_500, 1_500])
        truth = true_counts / n
        last_release = np.array([0.6, 0.4])
        target = true_dissimilarity(truth, last_release)
        estimates = []
        for _ in range(400):
            fo = oracle.sample_aggregate(true_counts, eps, rng=rng)
            estimates.append(estimate_dissimilarity(fo, last_release))
        assert np.mean(estimates) == pytest.approx(target, abs=2e-4)

    def test_estimator_can_go_negative(self, rng):
        """With truth == last release, the unbiased estimator straddles 0."""
        oracle = GRR()
        true_counts = np.array([1_000, 1_000])
        last_release = np.array([0.5, 0.5])
        values = [
            estimate_dissimilarity(
                oracle.sample_aggregate(true_counts, 1.0, rng=rng), last_release
            )
            for _ in range(200)
        ]
        assert min(values) < 0 < max(values)
