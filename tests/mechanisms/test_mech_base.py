"""Unit tests for the mechanism base class and registry."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.freq_oracles import GRR
from repro.mechanisms import (
    ALL_METHODS,
    LBU,
    available_mechanisms,
    get_mechanism,
)


class TestRegistry:
    def test_all_seven_registered(self):
        registered = set(available_mechanisms())
        assert {m.lower() for m in ALL_METHODS} <= registered

    def test_lookup_case_insensitive(self):
        assert get_mechanism("lbu").name == "LBU"
        assert get_mechanism("LpA").name == "LPA"

    def test_class_and_instance_lookup(self):
        assert isinstance(get_mechanism(LBU), LBU)
        instance = LBU()
        assert get_mechanism(instance) is instance

    def test_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            get_mechanism("nonexistent")

    def test_framework_labels(self):
        for name in ("LBU", "LSP", "LBD", "LBA"):
            assert get_mechanism(name).framework == "budget"
        for name in ("LPU", "LPD", "LPA"):
            assert get_mechanism(name).framework == "population"

    def test_adaptive_labels(self):
        for name in ("LBD", "LBA", "LPD", "LPA"):
            assert get_mechanism(name).adaptive
        for name in ("LBU", "LSP", "LPU"):
            assert not get_mechanism(name).adaptive


class TestSetupValidation:
    def _setup(self, **overrides):
        kwargs = dict(
            n_users=100,
            domain_size=2,
            epsilon=1.0,
            window=5,
            oracle=GRR(),
            rng=np.random.default_rng(0),
        )
        kwargs.update(overrides)
        mech = LBU()
        mech.setup(**kwargs)
        return mech

    def test_valid_setup(self):
        mech = self._setup()
        assert mech.n_users == 100
        assert np.array_equal(mech.last_release, np.zeros(2))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_users": 0},
            {"domain_size": 1},
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"window": 0},
        ],
    )
    def test_invalid_setup(self, overrides):
        with pytest.raises(InvalidParameterError):
            self._setup(**overrides)

    def test_predicted_error_uses_oracle(self):
        mech = self._setup()
        assert mech.predicted_error(1.0, 100) == pytest.approx(
            GRR().variance(1.0, 100, 2)
        )
