"""Interplay between frequency-oracle choice and mechanism behaviour.

The adaptive mechanisms' publish/approximate decision depends on the
oracle's closed-form error, so switching oracles changes *behaviour*, not
just noise.  These tests pin down that coupling.
"""

import numpy as np
import pytest

from repro.analysis import mean_squared_error
from repro.engine import run_stream
from repro.streams import MaterializedStream, make_lns


class TestOracleAwareDecisions:
    def test_err_reflects_oracle_variance(self, small_binary_stream):
        """The recorded potential publication error equals the oracle's
        closed form for the actually allocated users/budget."""
        from repro.freq_oracles import get_oracle

        result = run_stream(
            "LPD", small_binary_stream, epsilon=1.0, window=5, oracle="oue", seed=0
        )
        oue = get_oracle("oue")
        n = small_binary_stream.n_users
        first = result.records[0]
        # First timestamp: N_pp = (N/2)/2.
        assert first.err == pytest.approx(oue.variance(1.0, n // 2 // 2, 2))

    def test_better_oracle_reduces_large_domain_error(self, rng):
        """On a large domain, OUE-backed LPU beats GRR-backed LPU, matching
        the variance crossover."""
        values = rng.integers(0, 64, size=(20, 8_000))
        stream = MaterializedStream(values, domain_size=64)
        grr_mse, oue_mse = [], []
        for seed in range(3):
            a = run_stream("LPU", stream, epsilon=1.0, window=5, oracle="grr", seed=seed)
            b = run_stream("LPU", stream, epsilon=1.0, window=5, oracle="oue", seed=seed)
            grr_mse.append(mean_squared_error(a.releases, a.true_frequencies))
            oue_mse.append(mean_squared_error(b.releases, b.true_frequencies))
        assert np.mean(oue_mse) < np.mean(grr_mse)

    def test_grr_wins_small_domain(self):
        """And the reverse on the binary domain."""
        stream = make_lns(n_users=8_000, horizon=20, seed=4)
        grr_mse, oue_mse = [], []
        for seed in range(4):
            a = run_stream("LPU", stream, epsilon=1.0, window=5, oracle="grr", seed=seed)
            b = run_stream("LPU", stream, epsilon=1.0, window=5, oracle="oue", seed=seed)
            grr_mse.append(mean_squared_error(a.releases, a.true_frequencies))
            oue_mse.append(mean_squared_error(b.releases, b.true_frequencies))
        assert np.mean(grr_mse) < np.mean(oue_mse)

    @pytest.mark.parametrize("oracle", ["grr", "oue", "olh", "sue", "hr"])
    def test_every_oracle_satisfies_privacy_in_adaptive_runs(
        self, oracle, small_binary_stream
    ):
        for method in ("LBD", "LPD"):
            result = run_stream(
                method,
                small_binary_stream,
                epsilon=1.0,
                window=5,
                oracle=oracle,
                seed=7,
            )
            assert result.max_window_spend <= 1.0 + 1e-9


class TestDecisionConsistency:
    def test_publish_iff_dis_exceeds_err(self, small_binary_stream):
        """Every adaptive record satisfies the Algorithm 1-4 decision rule
        (modulo the u_min guard, which only blocks publications)."""
        for method in ("LBD", "LBA", "LPD", "LPA"):
            result = run_stream(
                method, small_binary_stream, epsilon=1.0, window=5, seed=3
            )
            for record in result.records:
                if record.strategy == "publish":
                    assert record.dis > record.err
                elif record.strategy == "approximate" and np.isfinite(record.err):
                    assert record.dis <= record.err
