"""Behavioural tests for the population-division mechanisms (Section 6)."""

import numpy as np
import pytest

from repro.engine import (
    STRATEGY_NULLIFIED,
    STRATEGY_PUBLISH,
    run_stream,
)
from repro.exceptions import InvalidParameterError
from repro.mechanisms import LPD
from repro.streams import make_step


class TestLPU:
    def test_group_size_is_n_over_w(self, small_binary_stream):
        w = 5
        n = small_binary_stream.n_users
        result = run_stream("LPU", small_binary_stream, epsilon=1.0, window=w, seed=0)
        sizes = {r.publication_users for r in result.records}
        assert sizes <= {n // w, n // w + 1}

    def test_full_budget_per_report(self, small_binary_stream):
        result = run_stream("LPU", small_binary_stream, epsilon=1.7, window=5, seed=0)
        assert all(
            r.publication_epsilon == pytest.approx(1.7) for r in result.records
        )

    def test_publishes_every_timestamp(self, small_binary_stream):
        result = run_stream("LPU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert all(r.strategy == STRATEGY_PUBLISH for r in result.records)

    def test_cfpu_is_inverse_window(self, small_binary_stream):
        result = run_stream("LPU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert result.cfpu == pytest.approx(1.0 / 5, rel=0.01)

    def test_each_window_spends_full_budget_once(self, small_binary_stream):
        result = run_stream("LPU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert result.max_window_spend == pytest.approx(1.0)


class TestLPD:
    def test_m1_group_size(self, small_binary_stream):
        w = 5
        n = small_binary_stream.n_users
        result = run_stream("LPD", small_binary_stream, epsilon=1.0, window=w, seed=0)
        assert all(
            r.dissimilarity_users == n // (2 * w) for r in result.records
        )

    def test_first_publication_uses_quarter_population(self, small_binary_stream):
        n = small_binary_stream.n_users
        result = run_stream("LPD", small_binary_stream, epsilon=1.0, window=5, seed=0)
        pubs = [r for r in result.records if r.strategy == STRATEGY_PUBLISH]
        assert pubs, "LPD should publish at least once (r0 is all-zero)"
        assert pubs[0].publication_users == n // 2 // 2

    def test_publication_users_window_bounded(self, small_binary_stream):
        """Σ|U_i,2| over any window stays <= N/2 (Theorem 6.2 proof)."""
        w = 6
        n = small_binary_stream.n_users
        result = run_stream("LPD", small_binary_stream, epsilon=1.0, window=w, seed=0)
        counts = [r.publication_users for r in result.records]
        for start in range(len(counts) - w + 1):
            assert sum(counts[start : start + w]) <= n // 2

    def test_u_min_blocks_tiny_groups(self, small_binary_stream):
        mech = LPD(u_min=10_000)  # bigger than N/4: every publication blocked
        result = run_stream(mech, small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert result.publication_count == 0

    def test_invalid_u_min(self):
        with pytest.raises(InvalidParameterError):
            LPD(u_min=0)

    def test_needs_enough_users(self):
        from repro.streams import BinaryStream

        tiny = BinaryStream(np.full(5, 0.5), n_users=5, seed=0)
        with pytest.raises(InvalidParameterError):
            run_stream("LPD", tiny, epsilon=1.0, window=5, seed=0)


class TestLPA:
    def test_m1_group_size(self, small_binary_stream):
        w = 5
        n = small_binary_stream.n_users
        result = run_stream("LPA", small_binary_stream, epsilon=1.0, window=w, seed=0)
        assert all(
            r.dissimilarity_users == n // (2 * w) for r in result.records
        )

    def test_nullification_matches_absorption(self, small_binary_stream):
        w = 5
        n = small_binary_stream.n_users
        unit = n // (2 * w)
        result = run_stream("LPA", small_binary_stream, epsilon=1.0, window=w, seed=0)
        for i, record in enumerate(result.records):
            if record.strategy == STRATEGY_PUBLISH:
                groups = round(record.publication_users / unit)
                following = result.records[i + 1 : i + groups]
                assert all(r.strategy == STRATEGY_NULLIFIED for r in following)

    def test_publication_users_window_bounded(self, small_binary_stream):
        w = 6
        n = small_binary_stream.n_users
        result = run_stream("LPA", small_binary_stream, epsilon=1.0, window=w, seed=0)
        counts = [r.publication_users for r in result.records]
        for start in range(len(counts) - w + 1):
            assert sum(counts[start : start + w]) <= n // 2 + w  # rounding slack

    def test_absorption_capped_at_w_groups(self, constant_stream):
        w = 5
        n = constant_stream.n_users
        result = run_stream("LPA", constant_stream, epsilon=1.0, window=w, seed=0)
        max_group = w * (n // (2 * w))
        assert all(r.publication_users <= max_group for r in result.records)


class TestAdaptivityOnStepStream:
    @pytest.mark.parametrize("method", ["LPD", "LPA"])
    def test_publishes_near_changes(self, method):
        stream = make_step(
            n_users=20_000, horizon=60, low=0.05, high=0.35, period=20, seed=4
        )
        result = run_stream(method, stream, epsilon=1.0, window=5, seed=1)
        publish_ts = {r.t for r in result.records if r.strategy == STRATEGY_PUBLISH}
        for change in (20, 40):
            assert any(
                abs(t - change) <= 3 for t in publish_ts
            ), f"{method} missed the change at t={change}"

    @pytest.mark.parametrize("method", ["LPD", "LPA"])
    def test_mostly_approximates_on_constant_stream(self, method, constant_stream):
        result = run_stream(method, constant_stream, epsilon=1.0, window=5, seed=1)
        # After the initial publication there is nothing to chase.
        assert result.publication_rate < 0.5
