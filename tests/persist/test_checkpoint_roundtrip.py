"""Checkpoint round trips must be bit-identical, for every mechanism.

The core persistence claim: snapshot a session mid-stream, push the
payload through an actual JSON round trip, restore it over a fresh
dataset, continue — and every downstream byte (releases, records,
accountant ledger, store contents, future query answers) equals an
uninterrupted run's.  The full mechanism × oracle matrix runs here
because each mechanism checkpoints different state (budget windows,
user pools, publication histories, Kalman filters) and each oracle
exercises the shared RNG differently.
"""

import json

import numpy as np
import pytest

from repro.engine import SessionGroup, StreamSession
from repro.exceptions import CheckpointError
from repro.persist import CHECKPOINT_VERSION, Checkpoint
from repro.streams import MaterializedStream, make_lns

MECHANISMS = ["LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA", "LPF"]
ORACLES = ["grr", "oue", "sue", "olh", "hr"]

HORIZON = 40
SPLIT = 17


def _dataset():
    values = np.random.default_rng(99).integers(0, 5, size=(HORIZON, 700))
    return MaterializedStream(values, domain_size=5)


def _session(mechanism, oracle, *, capacity=24):
    session = StreamSession(
        mechanism,
        _dataset(),
        epsilon=1.0,
        window=6,
        horizon=HORIZON,
        oracle=oracle,
        seed=4242,
        postprocess="norm_sub",
    )
    session.attach_store(capacity)
    return session


def _json_roundtrip(payload):
    return json.loads(json.dumps(payload))


def _assert_results_identical(a, b):
    assert np.array_equal(a.releases, b.releases)
    assert np.array_equal(a.true_frequencies, b.true_frequencies)
    assert a.total_reports == b.total_reports
    assert a.max_window_spend == b.max_window_spend
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.t == rb.t
        assert ra.strategy == rb.strategy
        assert np.array_equal(np.asarray(ra.release), np.asarray(rb.release))
        assert ra.publication_epsilon == rb.publication_epsilon
        assert ra.reports == rb.reports


@pytest.mark.parametrize("oracle", ORACLES)
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_mid_stream_roundtrip_bit_identical(mechanism, oracle):
    reference = _session(mechanism, oracle)
    reference.start()
    reference.observe_many(0, HORIZON)
    ref_store = reference.store
    ref_result = reference.finalize()

    live = _session(mechanism, oracle)
    live.start()
    live.observe_many(0, SPLIT)
    payload = _json_roundtrip(live.snapshot())

    resumed = StreamSession.restore(payload, _dataset())
    resumed.observe_many(SPLIT, HORIZON - SPLIT)
    res_store = resumed.store
    result = resumed.finalize()

    _assert_results_identical(ref_result, result)
    assert np.array_equal(
        ref_store.window_sum(HORIZON - 6, HORIZON - 1),
        res_store.window_sum(HORIZON - 6, HORIZON - 1),
    )
    assert ref_store.span_publication_groups(
        HORIZON - 20, HORIZON - 1
    ) == res_store.span_publication_groups(HORIZON - 20, HORIZON - 1)
    ref_acc = reference.accountant.state_dict()
    res_acc = resumed.accountant.state_dict()
    assert ref_acc["uniform"] == res_acc["uniform"]
    assert ref_acc["uniform_spend"] == res_acc["uniform_spend"]
    assert ref_acc["max_window_spend"] == res_acc["max_window_spend"]
    assert ref_acc["total_charges"] == res_acc["total_charges"]


@pytest.mark.parametrize("mechanism", ["LBD", "LPA"])
def test_snapshot_at_zero_and_at_horizon_edge(mechanism):
    """Checkpointing immediately after start() and one step before the
    horizon both resume correctly."""
    reference = _session(mechanism, "grr")
    reference.start()
    reference.observe_many(0, HORIZON)
    ref_result = reference.finalize()

    for split in (0, HORIZON - 1):
        live = _session(mechanism, "grr")
        live.start()
        if split:
            live.observe_many(0, split)
        resumed = StreamSession.restore(
            _json_roundtrip(live.snapshot()), _dataset()
        )
        resumed.observe_many(split, HORIZON - split)
        _assert_results_identical(ref_result, resumed.finalize())


def test_restore_after_every_timestamp_matches(tiny_multicat_stream):
    """Chained restore: re-checkpoint after every single step and the
    final trace still equals the uninterrupted run's."""
    horizon = tiny_multicat_stream.horizon
    reference = StreamSession(
        "LBD", tiny_multicat_stream, 1.0, 5, horizon=horizon, seed=1
    )
    reference.start()
    reference.observe_many(0, horizon)
    ref_result = reference.finalize()

    session = StreamSession(
        "LBD", tiny_multicat_stream, 1.0, 5, horizon=horizon, seed=1
    )
    session.start()
    for t in range(horizon):
        session = StreamSession.restore(
            _json_roundtrip(session.snapshot()), tiny_multicat_stream
        )
        session.observe(t)
    _assert_results_identical(ref_result, session.finalize())


def test_generative_stream_repositions_on_restore():
    """Restoring over a fresh generative stream replays it to the cursor,
    so the continued truth sequence matches the uninterrupted run."""
    def make():
        return make_lns(n_users=900, horizon=30, seed=11)

    reference = StreamSession("LBU", make(), 1.0, 4, horizon=30, seed=2)
    reference.start()
    reference.observe_many(0, 30)
    ref_result = reference.finalize()

    live = StreamSession("LBU", make(), 1.0, 4, horizon=30, seed=2)
    live.start()
    live.observe_many(0, 13)
    resumed = StreamSession.restore(_json_roundtrip(live.snapshot()), make())
    resumed.observe_many(13, 17)
    _assert_results_identical(ref_result, resumed.finalize())


def test_checkpoint_file_roundtrip(tmp_path, tiny_multicat_stream):
    """Checkpoint.save/load is atomic and exact."""
    session = StreamSession(
        "LPD", tiny_multicat_stream, 1.0, 5, horizon=25, seed=3
    )
    session.attach_store(16)
    session.start()
    session.observe_many(0, 11)
    path = tmp_path / "cp.json"
    Checkpoint.capture(session).save(path)
    loaded = Checkpoint.load(path)
    assert loaded.version == CHECKPOINT_VERSION
    assert loaded.kind == "session"
    assert loaded.watermark == 11
    resumed = loaded.restore(tiny_multicat_stream)
    assert resumed.steps_observed == 11
    session.observe_many(11, 14)
    resumed.observe_many(11, 14)
    assert np.array_equal(
        session.finalize().releases, resumed.finalize().releases
    )


class TestGroupCheckpoint:
    def _group(self, dataset):
        group = SessionGroup(dataset, truth_chunk=8)
        group.add_session("LBD", 1.0, 5, oracle="grr", seed=21)
        group.add_session("LPU", 0.8, 5, oracle="oue", seed=22)
        group.add_session("LBU", 2.0, 4, oracle="grr", seed=23, horizon=18)
        return group

    def test_mid_pass_roundtrip(self):
        def make():
            values = np.random.default_rng(5).integers(0, 4, size=(25, 500))
            return MaterializedStream(values, domain_size=4)

        ref_results = self._group(make()).run()

        group = self._group(make())
        group.start_pass()
        group.advance_to(11)
        payload = _json_roundtrip(group.snapshot())
        restored = SessionGroup.restore(payload, make())
        assert restored.cursor == 11
        restored.advance_to(restored.steps)
        for a, b in zip(ref_results, restored.finalize_all()):
            _assert_results_identical(a, b)

    def test_unstarted_group_refuses_snapshot(self, tiny_multicat_stream):
        group = self._group(tiny_multicat_stream)
        with pytest.raises(CheckpointError):
            group.snapshot()


class TestCheckpointValidation:
    def _payload(self, tiny_multicat_stream):
        session = StreamSession(
            "LBD", tiny_multicat_stream, 1.0, 5, horizon=25, seed=3
        )
        session.start()
        session.observe_many(0, 7)
        return session.snapshot()

    def test_unstarted_session_refuses_snapshot(self, tiny_multicat_stream):
        session = StreamSession(
            "LBD", tiny_multicat_stream, 1.0, 5, horizon=25, seed=3
        )
        with pytest.raises(CheckpointError):
            session.snapshot()

    def test_finalized_session_refuses_snapshot(self, tiny_multicat_stream):
        session = StreamSession(
            "LBD", tiny_multicat_stream, 1.0, 5, horizon=25, seed=3
        )
        session.start()
        session.observe_many(0, 25)
        session.finalize()
        with pytest.raises(CheckpointError):
            session.snapshot()

    def test_version_skew_rejected(self, tiny_multicat_stream):
        payload = self._payload(tiny_multicat_stream)
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            StreamSession.restore(payload, tiny_multicat_stream)

    def test_wrong_format_rejected(self, tiny_multicat_stream):
        with pytest.raises(CheckpointError, match="format"):
            StreamSession.restore({"hello": 1}, tiny_multicat_stream)

    def test_population_mismatch_rejected(self, tiny_multicat_stream):
        payload = self._payload(tiny_multicat_stream)
        other = MaterializedStream(
            np.random.default_rng(0).integers(0, 5, size=(25, 500)),
            domain_size=5,
        )
        with pytest.raises(CheckpointError, match="users"):
            StreamSession.restore(payload, other)

    def test_domain_mismatch_rejected(self, tiny_multicat_stream):
        payload = self._payload(tiny_multicat_stream)
        other = MaterializedStream(
            np.random.default_rng(0).integers(0, 7, size=(25, 600)),
            domain_size=7,
        )
        with pytest.raises(CheckpointError, match="domain"):
            StreamSession.restore(payload, other)

    def test_truncated_state_rejected(self, tiny_multicat_stream):
        payload = self._payload(tiny_multicat_stream)
        del payload["state"]["mechanism"]
        with pytest.raises(CheckpointError, match="corrupt"):
            StreamSession.restore(payload, tiny_multicat_stream)

    def test_corrupt_array_payload_rejected(self, tiny_multicat_stream):
        payload = self._payload(tiny_multicat_stream)
        payload["state"]["mechanism"]["last_release"]["__nd__"] = "!!!"
        with pytest.raises(CheckpointError):
            StreamSession.restore(payload, tiny_multicat_stream)

    def test_rng_class_mismatch_rejected(self, tiny_multicat_stream):
        payload = self._payload(tiny_multicat_stream)
        payload["state"]["rng"]["bit_generator"] = "MT19937"
        with pytest.raises(CheckpointError, match="bit-generator"):
            StreamSession.restore(payload, tiny_multicat_stream)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text('{"format": "repro-checkpoint", "version')
        with pytest.raises(CheckpointError, match="JSON"):
            Checkpoint.load(path)
