"""Randomized kill/restore trials against a real ``repro serve`` process.

Thin pytest wrapper over :mod:`tools.crashtest` — the harness CI runs
with ``--kills 25``.  Here a handful of seeded trials keep tier-1 fast
while still SIGKILLing the server at arbitrary chunk phases and
asserting the resumed run is bit-identical to an uninterrupted one.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from crashtest import make_feed, run_crashtest  # noqa: E402


def test_randomized_kill_restore_trials(tmp_path):
    report = run_crashtest(
        kills=4,
        seed=0,
        steps=36,
        n_users=50,
        domain_size=4,
        chunk=4,
        checkpoint_every=2,
        workdir=tmp_path,
    )
    failed = [t for t in report["trials"] if not t["passed"]]
    assert report["passed"], f"failed trials: {failed}"
    for trial in report["trials"]:
        assert trial["no_duplicate_ingests"]
        assert trial["wal_matches"]
        assert trial["answers_match"]


def test_feed_is_deterministic():
    assert make_feed(3, 10, 20, 4) == make_feed(3, 10, 20, 4)
    assert make_feed(3, 10, 20, 4) != make_feed(4, 10, 20, 4)
