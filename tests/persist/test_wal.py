"""Write-ahead release log and state-directory semantics.

The WAL's durability contract: a crash can only produce a torn
*uncommitted* tail, which replay silently drops; anything malformed
inside the committed prefix is real corruption and raises.  The state
directory keeps the checkpoint/WAL pair consistent on resume by
truncating the WAL to the checkpoint watermark.
"""

import json

import pytest

from repro.exceptions import CheckpointError, WALError
from repro.persist import ReleaseWAL, StateDir, replay_wal, truncate_wal


def _wal(tmp_path, name="log.wal"):
    return tmp_path / name


class TestCommitReplay:
    def test_missing_file_is_empty(self, tmp_path):
        rows, watermark = replay_wal(_wal(tmp_path))
        assert rows == []
        assert watermark == 0

    def test_commit_then_replay(self, tmp_path):
        path = _wal(tmp_path)
        with ReleaseWAL(path) as wal:
            wal.append(0, [0.5, 0.5], "publish", variance=0.01)
            wal.append(1, [0.4, 0.6], "approximate")
            wal.commit(2)
        rows, watermark = replay_wal(path)
        assert watermark == 2
        assert [row["t"] for row in rows] == [0, 1]
        assert rows[0]["strategy"] == "publish"
        assert rows[0]["release"] == [0.5, 0.5]
        assert rows[0]["variance"] == 0.01
        assert "variance" not in rows[1]

    def test_commits_accumulate(self, tmp_path):
        path = _wal(tmp_path)
        with ReleaseWAL(path) as wal:
            wal.append(0, [1.0], "publish")
            wal.commit(1)
        # A second writer (post-restart) appends to the same log.
        with ReleaseWAL(path) as wal:
            wal.append(1, [0.0], "publish")
            wal.commit(2)
        rows, watermark = replay_wal(path)
        assert [row["t"] for row in rows] == [0, 1]
        assert watermark == 2

    def test_commit_without_rows_advances_watermark(self, tmp_path):
        """Skipped timestamps (no release row) still move the watermark."""
        path = _wal(tmp_path)
        with ReleaseWAL(path) as wal:
            wal.commit(5)
        rows, watermark = replay_wal(path)
        assert rows == []
        assert watermark == 5

    def test_uncommitted_rows_lost_on_close(self, tmp_path):
        path = _wal(tmp_path)
        with ReleaseWAL(path) as wal:
            wal.append(0, [1.0], "publish")
            wal.commit(1)
            wal.append(1, [0.5], "publish")  # never committed
        rows, watermark = replay_wal(path)
        assert [row["t"] for row in rows] == [0]
        assert watermark == 1


class TestTornTail:
    def _committed(self, path):
        with ReleaseWAL(path) as wal:
            wal.append(0, [1.0], "publish")
            wal.commit(1)

    def test_torn_partial_line_dropped(self, tmp_path):
        path = _wal(tmp_path)
        self._committed(path)
        with path.open("a") as handle:
            handle.write('{"op": "release", "t": 1, "rele')  # crash mid-write
        rows, watermark = replay_wal(path)
        assert [row["t"] for row in rows] == [0]
        assert watermark == 1

    def test_uncommitted_complete_rows_dropped(self, tmp_path):
        path = _wal(tmp_path)
        self._committed(path)
        with path.open("a") as handle:
            handle.write(json.dumps({"op": "release", "t": 1,
                                     "strategy": "publish",
                                     "release": [0.5]}) + "\n")
        rows, watermark = replay_wal(path)
        assert [row["t"] for row in rows] == [0]
        assert watermark == 1

    def test_malformed_line_inside_committed_prefix_raises(self, tmp_path):
        path = _wal(tmp_path)
        with path.open("w") as handle:
            handle.write('{"op": "release", "t": 0, "strategy": "p", '
                         '"release": [1.0]}\n')
            handle.write("!!garbage!!\n")
            handle.write('{"op": "commit", "watermark": 2}\n')
        with pytest.raises(WALError, match="undecodable"):
            replay_wal(path)

    def test_unknown_op_inside_committed_prefix_raises(self, tmp_path):
        path = _wal(tmp_path)
        with path.open("w") as handle:
            handle.write('{"op": "mystery"}\n')
            handle.write('{"op": "commit", "watermark": 1}\n')
        with pytest.raises(WALError, match="unknown op"):
            replay_wal(path)


class TestValidation:
    def test_out_of_order_timestamps_raise(self, tmp_path):
        path = _wal(tmp_path)
        with path.open("w") as handle:
            for t in (0, 2, 1):
                handle.write(json.dumps({"op": "release", "t": t,
                                         "strategy": "p",
                                         "release": [1.0]}) + "\n")
            handle.write('{"op": "commit", "watermark": 3}\n')
        with pytest.raises(WALError, match="out-of-order"):
            replay_wal(path)

    def test_duplicate_timestamp_raises(self, tmp_path):
        path = _wal(tmp_path)
        with path.open("w") as handle:
            for _ in range(2):
                handle.write(json.dumps({"op": "release", "t": 0,
                                         "strategy": "p",
                                         "release": [1.0]}) + "\n")
            handle.write('{"op": "commit", "watermark": 1}\n')
        with pytest.raises(WALError, match="out-of-order"):
            replay_wal(path)

    def test_backwards_watermark_raises(self, tmp_path):
        path = _wal(tmp_path)
        with path.open("w") as handle:
            handle.write('{"op": "commit", "watermark": 5}\n')
            handle.write('{"op": "commit", "watermark": 3}\n')
        with pytest.raises(WALError, match="backwards"):
            replay_wal(path)

    def test_row_beyond_its_watermark_raises(self, tmp_path):
        path = _wal(tmp_path)
        with path.open("w") as handle:
            handle.write(json.dumps({"op": "release", "t": 7,
                                     "strategy": "p",
                                     "release": [1.0]}) + "\n")
            handle.write('{"op": "commit", "watermark": 3}\n')
        with pytest.raises(WALError, match="not\\s+covered"):
            replay_wal(path)

    def test_commit_without_watermark_raises(self, tmp_path):
        path = _wal(tmp_path)
        path.write_text('{"op": "commit"}\n')
        with pytest.raises(WALError, match="watermark"):
            replay_wal(path)


class TestTruncate:
    def test_truncate_drops_rows_at_or_beyond_watermark(self, tmp_path):
        path = _wal(tmp_path)
        with ReleaseWAL(path) as wal:
            for t in range(6):
                wal.append(t, [float(t)], "publish")
            wal.commit(6)
        kept = truncate_wal(path, 4)
        assert kept == 4
        rows, watermark = replay_wal(path)
        assert [row["t"] for row in rows] == [0, 1, 2, 3]
        assert watermark == 4

    def test_truncate_to_zero_empties_log(self, tmp_path):
        path = _wal(tmp_path)
        with ReleaseWAL(path) as wal:
            wal.append(0, [1.0], "publish")
            wal.commit(1)
        assert truncate_wal(path, 0) == 0
        rows, watermark = replay_wal(path)
        assert rows == []
        assert watermark == 0

    def test_truncate_missing_log_creates_commit_marker(self, tmp_path):
        path = _wal(tmp_path)
        assert truncate_wal(path, 0) == 0
        assert path.exists()
        assert replay_wal(path) == ([], 0)


class TestStateDir:
    def test_fresh_dir_resume(self, tmp_path):
        state = StateDir(tmp_path / "state")
        checkpoint, watermark = state.prepare_resume()
        assert checkpoint is None
        assert watermark == 0
        # prepare_resume leaves a valid (empty) WAL behind.
        assert state.committed_releases() == ([], 0)

    def test_root_is_a_file_raises(self, tmp_path):
        blocker = tmp_path / "state"
        blocker.write_text("not a dir")
        with pytest.raises(CheckpointError, match="not a directory"):
            StateDir(blocker)

    def test_wal_ahead_of_checkpoint_is_truncated(self, tmp_path):
        """Crash between a WAL commit and the next checkpoint write: the
        WAL runs ahead; resume cuts it back to the checkpoint mark."""
        state = StateDir(tmp_path / "state")
        with state.open_wal() as wal:
            for t in range(6):
                wal.append(t, [float(t)], "publish")
            wal.commit(6)
        state.checkpoint_path.write_text(
            json.dumps(_fake_checkpoint_payload(watermark=4))
        )
        checkpoint, watermark = state.prepare_resume()
        assert watermark == 4
        rows, wal_mark = state.committed_releases()
        assert [row["t"] for row in rows] == [0, 1, 2, 3]
        assert wal_mark == 4

    def test_wal_behind_checkpoint_raises(self, tmp_path):
        """The server commits the WAL before the checkpoint, so a WAL
        behind the checkpoint can only mean tampering or mixed runs."""
        state = StateDir(tmp_path / "state")
        with state.open_wal() as wal:
            wal.commit(2)
        state.checkpoint_path.write_text(
            json.dumps(_fake_checkpoint_payload(watermark=9))
        )
        with pytest.raises(CheckpointError, match="behind the checkpoint"):
            state.prepare_resume()

    def test_corrupt_wal_fails_resume(self, tmp_path):
        state = StateDir(tmp_path / "state")
        state.wal_path.write_text(
            "garbage\n" + '{"op": "commit", "watermark": 1}\n'
        )
        with pytest.raises(WALError):
            state.prepare_resume()


def _fake_checkpoint_payload(watermark: int) -> dict:
    """Minimal payload Checkpoint.load accepts whose watermark is read
    from state.next_t (restoring it would fail — resume validation of
    the pair happens before any restore)."""
    return {
        "format": "repro-checkpoint",
        "version": 1,
        "config": {},
        "state": {"next_t": watermark},
    }
