"""Property-based tests on the accountant and the user pool."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import UserPool, WEventAccountant
from repro.exceptions import PopulationExhaustedError, PrivacyViolationError


class TestAccountantProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),  # window
        st.lists(
            st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
    )
    def test_accountant_matches_bruteforce_sliding_sum(self, window, charges):
        """The accountant accepts a schedule iff the brute-force sliding sum
        stays within budget — no false alarms, no misses."""
        epsilon = 1.0
        acc = WEventAccountant(n_users=3, epsilon=epsilon, window=window)
        spent = []
        violated_at = None
        for t, eps in enumerate(charges):
            spent.append(eps)
            window_sum = sum(spent[max(0, t - window + 1) : t + 1])
            try:
                acc.charge(t, None, eps)
                assert window_sum <= epsilon + 1e-9, (
                    f"accountant missed a violation at t={t}"
                )
            except PrivacyViolationError:
                violated_at = t
                assert window_sum > epsilon + 1e-12, (
                    f"accountant false alarm at t={t}"
                )
                break
        if violated_at is None:
            assert acc.max_window_spend <= epsilon + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_disjoint_group_schedule_never_violates(self, window, seed):
        """LPU-style schedules (disjoint groups, full budget, recycled after
        w steps) are always accepted."""
        rng = np.random.default_rng(seed)
        n = window * 5
        acc = WEventAccountant(n_users=n, epsilon=1.0, window=window)
        groups = np.array_split(rng.permutation(n), window)
        for t in range(4 * window):
            acc.charge(t, groups[t % window], 1.0)
        assert acc.max_window_spend <= 1.0 + 1e-9


class TestUserPoolProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=50),
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_no_user_held_twice(self, n_users, requests, seed):
        """However sampling/recycling interleave, a user is never handed
        out while already outstanding, and counts always reconcile."""
        pool = UserPool(n_users, seed=seed)
        outstanding: list[np.ndarray] = []
        held = set()
        for k in requests:
            try:
                ids = pool.sample(k)
            except PopulationExhaustedError:
                assert k > pool.n_available
                if outstanding:
                    back = outstanding.pop(0)
                    pool.recycle(back)
                    held -= set(back.tolist())
                continue
            as_set = set(ids.tolist())
            assert not (as_set & held), "user handed out twice"
            held |= as_set
            outstanding.append(ids)
            assert pool.n_available == n_users - len(held)
        for ids in outstanding:
            pool.recycle(ids)
        assert pool.n_available == n_users
