"""Property-based tests on frequency oracles (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.freq_oracles import (
    get_oracle,
    grr_probabilities,
    oue_probabilities,
    sue_probabilities,
)
from repro.freq_oracles.variance import grr_mean_variance

oracle_names = st.sampled_from(["grr", "oue", "olh", "sue"])
epsilons = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
domains = st.integers(min_value=2, max_value=40)


class TestProbabilityProperties:
    @given(epsilons, domains)
    def test_grr_probability_ratio_bounded_by_epsilon(self, epsilon, d):
        """The defining LDP inequality: p/q == e^eps exactly for GRR."""
        p, q = grr_probabilities(epsilon, d)
        assert 0 < q < p < 1
        assert p / q == pytest.approx(math.exp(epsilon))

    @given(epsilons)
    def test_oue_bitwise_ratio(self, epsilon):
        p, q = oue_probabilities(epsilon)
        # Worst-case single-bit likelihood ratio equals e^eps.
        ratio = (p * (1 - q)) / (q * (1 - p))
        assert ratio == pytest.approx(math.exp(epsilon))

    @given(epsilons)
    def test_sue_two_bit_ratio(self, epsilon):
        """SUE spends eps/2 per differing bit; two bits differ between any
        two one-hot encodings, giving e^eps overall."""
        p, q = sue_probabilities(epsilon)
        per_bit = p / q
        assert per_bit * per_bit == pytest.approx(math.exp(epsilon))


class TestEstimatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        oracle_names,
        epsilons,
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_mass_preservation_grr_like(self, name, epsilon, d, seed):
        """Estimated frequencies always sum to ~1 for GRR (exact) and stay
        finite for all oracles."""
        rng = np.random.default_rng(seed)
        oracle = get_oracle(name)
        counts = rng.multinomial(500, np.full(d, 1.0 / d))
        estimate = oracle.sample_aggregate(counts, epsilon, rng=rng)
        assert np.isfinite(estimate.frequencies).all()
        if name == "grr":
            assert estimate.frequencies.sum() == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(
        oracle_names,
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_estimates_centre_on_truth(self, name, seed):
        """Averaging many estimates approaches the true distribution."""
        rng = np.random.default_rng(seed)
        oracle = get_oracle(name)
        truth = np.array([0.5, 0.3, 0.2])
        counts = (truth * 3_000).astype(int)
        mean = np.zeros(3)
        runs = 60
        for _ in range(runs):
            mean += oracle.sample_aggregate(counts, 2.0, rng=rng).frequencies
        mean /= runs
        assert np.allclose(mean, truth, atol=0.05)

    @settings(max_examples=30, deadline=None)
    @given(epsilons, domains, st.integers(min_value=10, max_value=10**6))
    def test_variance_positive_monotone(self, epsilon, d, n):
        v = grr_mean_variance(epsilon, n, d)
        assert v > 0
        assert grr_mean_variance(epsilon, 2 * n, d) < v
        assert grr_mean_variance(epsilon + 0.5, n, d) < v

    @settings(max_examples=30, deadline=None)
    @given(
        epsilons,
        st.integers(min_value=2, max_value=50),
        st.integers(min_value=2, max_value=117),
    )
    def test_theorem_6_1_universally(self, epsilon, w, d):
        """V(eps, N/w) < V(eps/w, N) over the whole parameter box."""
        n = 100_000
        assert grr_mean_variance(epsilon, n // w, d) < grr_mean_variance(
            epsilon / w, n, d
        )


class TestPerturbDomainProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        oracle_names,
        epsilons,
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_perturb_aggregate_roundtrip(self, name, epsilon, d, seed):
        rng = np.random.default_rng(seed)
        oracle = get_oracle(name)
        values = rng.integers(0, d, size=200)
        reports = oracle.perturb(values, d, epsilon, rng=rng)
        estimate = oracle.aggregate(reports, d, epsilon)
        assert estimate.n_reports == 200
        assert estimate.frequencies.shape == (d,)
