"""Property-based tests on mechanisms: privacy invariants under random
parameters, and post-processing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import run_stream
from repro.freq_oracles.postprocess import norm_sub, project_simplex
from repro.mechanisms import ALL_METHODS
from repro.streams import BinaryStream


def _random_stream(draw_seed: int, horizon: int, n_users: int) -> BinaryStream:
    rng = np.random.default_rng(draw_seed)
    probs = np.clip(rng.normal(0.1, 0.05, size=horizon), 0.0, 1.0)
    return BinaryStream(probs, n_users=n_users, seed=draw_seed)


class TestPrivacyInvariantProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(ALL_METHODS),
        st.floats(min_value=0.2, max_value=3.0, allow_nan=False),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_window_spend_never_exceeds_epsilon(self, method, epsilon, window, seed):
        """For any (method, eps, w, stream), the live accountant accepts the
        whole run and the recorded max window spend is <= eps."""
        stream = _random_stream(seed % 1_000, horizon=3 * window, n_users=800)
        result = run_stream(method, stream, epsilon=epsilon, window=window, seed=seed)
        assert result.max_window_spend <= epsilon + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(("LPU", "LPD", "LPA")),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_population_methods_report_each_user_once_per_window(
        self, method, window, seed
    ):
        """Population division: total reports over any w consecutive steps
        never exceed N (each user at most once)."""
        n_users = 600
        stream = _random_stream(seed % 1_000, horizon=3 * window, n_users=n_users)
        result = run_stream(method, stream, epsilon=1.0, window=window, seed=seed)
        reports = [r.reports for r in result.records]
        for start in range(len(reports) - window + 1):
            assert sum(reports[start : start + window]) <= n_users


class TestReleaseInvariantProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(ALL_METHODS),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_releases_are_finite(self, method, seed):
        stream = _random_stream(seed % 1_000, horizon=12, n_users=800)
        result = run_stream(method, stream, epsilon=1.0, window=4, seed=seed)
        assert np.isfinite(result.releases).all()


class TestPostprocessProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    def test_norm_sub_outputs_distribution(self, values):
        out = norm_sub(np.array(values))
        assert out.sum() == pytest.approx(1.0)
        assert (out >= -1e-12).all()

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    def test_simplex_projection_properties(self, values):
        x = np.array(values)
        out = project_simplex(x)
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()
        # Projection is order preserving.
        order_in = np.argsort(x, kind="stable")
        assert (np.diff(out[order_in]) >= -1e-12).all()
