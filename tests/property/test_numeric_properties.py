"""Property-based tests on the numeric mechanisms and analysis helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import cusum_detect, score_change_points, topk_precision
from repro.query import get_numeric_mechanism

numeric_names = st.sampled_from(["duchi", "piecewise", "hybrid"])
epsilons = st.floats(min_value=0.2, max_value=5.0, allow_nan=False)


class TestNumericProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        numeric_names,
        epsilons,
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_reports_centre_on_value(self, name, epsilon, value, seed):
        """Averaging many perturbed copies of one value recovers it within
        a few standard errors — per-report unbiasedness."""
        mech = get_numeric_mechanism(name)
        rng = np.random.default_rng(seed)
        n = 4_000
        reports = mech.perturb(np.full(n, value), epsilon, rng=rng)
        standard_error = np.sqrt(mech.variance(epsilon, n))
        assert abs(reports.mean() - value) < 6 * standard_error + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(numeric_names, epsilons)
    def test_variance_monotone(self, name, epsilon):
        mech = get_numeric_mechanism(name)
        assert mech.variance(epsilon, 2_000) < mech.variance(epsilon, 1_000)
        assert mech.variance(epsilon + 0.5, 1_000) <= mech.variance(
            epsilon, 1_000
        ) * 1.01

    @settings(max_examples=25, deadline=None)
    @given(
        numeric_names,
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_reports_bounded(self, name, seed):
        """Every mechanism's output magnitude is bounded by its own scale
        constant — no unbounded reports."""
        import math

        mech = get_numeric_mechanism(name)
        rng = np.random.default_rng(seed)
        eps = 1.0
        reports = mech.perturb(rng.uniform(-1, 1, size=500), eps, rng=rng)
        # Both Duchi's and PM's supports are within (e^{eps/2}+1)/(e^{eps/2}-1)
        # and (e^eps+1)/(e^eps-1); take the looser of the two.
        s, e = math.exp(eps / 2.0), math.exp(eps)
        bound = max((s + 1) / (s - 1), (e + 1) / (e - 1))
        assert np.abs(reports).max() <= bound + 1e-9


class TestAnalysisProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=4,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_topk_self_precision_is_one(self, row, k):
        trace = np.tile(np.asarray(row), (3, 1))
        assert topk_precision(trace, trace, k) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=0.2, allow_nan=False),
        st.floats(min_value=0.3, max_value=2.0, allow_nan=False),
    )
    def test_cusum_silent_on_constant(self, drift, threshold):
        series = np.full(100, 0.5)
        assert cusum_detect(series, drift=drift, threshold=threshold) == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=200), max_size=10),
        st.lists(st.integers(min_value=0, max_value=200), max_size=5),
        st.integers(min_value=0, max_value=20),
    )
    def test_scoring_accounting_identity(self, detected, true_points, tol):
        """matched + false_alarms == len(detected), matched <= len(truth)."""
        report = score_change_points(detected, true_points, tolerance=tol)
        assert report.matched + report.false_alarms == len(detected)
        assert report.matched <= len(set(true_points)) + (
            len(true_points) - len(set(true_points))
        )
