"""Property-based checkpoint round trips.

Hypothesis drives the persistence machinery through random coordinates
— mechanism × oracle pair, session seed, split point, window, epsilon —
and asserts the one invariant that matters everywhere: a session
restored from a JSON-round-tripped snapshot continues **bit-identically**
to the uninterrupted run.  The deterministic matrix in
``tests/persist/`` pins every mechanism × oracle pair; these tests walk
the parameter space in between.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import StreamSession, WEventAccountant
from repro.persist import ReleaseWAL, replay_wal, truncate_wal
from repro.streams import MaterializedStream

MECHANISMS = ["LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA", "LPF"]
ORACLES = ["grr", "oue", "sue", "olh", "hr"]

HORIZON = 18


def _dataset(data_seed):
    values = np.random.default_rng(data_seed).integers(
        0, 4, size=(HORIZON, 300)
    )
    return MaterializedStream(values, domain_size=4)


def _run(mechanism, oracle, seed, window, epsilon, data_seed, split):
    """Run to ``split``, JSON-round-trip a snapshot, restore, finish."""
    session = StreamSession(
        mechanism,
        _dataset(data_seed),
        epsilon=epsilon,
        window=window,
        horizon=HORIZON,
        oracle=oracle,
        seed=seed,
    )
    session.start()
    session.observe_many(0, split)
    payload = json.loads(json.dumps(session.snapshot()))
    resumed = StreamSession.restore(payload, _dataset(data_seed))
    resumed.observe_many(split, HORIZON - split)
    return resumed.finalize()


class TestCheckpointProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(MECHANISMS),
        st.sampled_from(ORACLES),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=HORIZON - 1),
    )
    def test_roundtrip_is_bit_identical(
        self, mechanism, oracle, seed, window, epsilon, data_seed, split
    ):
        reference = StreamSession(
            mechanism,
            _dataset(data_seed),
            epsilon=epsilon,
            window=window,
            horizon=HORIZON,
            oracle=oracle,
            seed=seed,
        )
        reference.start()
        reference.observe_many(0, HORIZON)
        ref = reference.finalize()

        result = _run(
            mechanism, oracle, seed, window, epsilon, data_seed, split
        )
        assert np.array_equal(ref.releases, result.releases)
        assert np.array_equal(ref.true_frequencies, result.true_frequencies)
        assert ref.total_reports == result.total_reports
        assert ref.max_window_spend == result.max_window_spend
        assert [r.strategy for r in ref.records] == [
            r.strategy for r in result.records
        ]

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(MECHANISMS),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(
            st.integers(min_value=0, max_value=HORIZON - 1),
            min_size=1,
            max_size=4,
        ),
    )
    def test_chained_snapshots_compose(self, mechanism, seed, raw_splits):
        """Checkpointing repeatedly at arbitrary points is the same as
        never checkpointing at all."""
        reference = StreamSession(
            mechanism, _dataset(7), 1.0, 4, horizon=HORIZON,
            oracle="grr", seed=seed,
        )
        reference.start()
        reference.observe_many(0, HORIZON)
        ref = reference.finalize()

        session = StreamSession(
            mechanism, _dataset(7), 1.0, 4, horizon=HORIZON,
            oracle="grr", seed=seed,
        )
        session.start()
        cursor = 0
        for split in sorted(set(raw_splits)):
            session.observe_many(cursor, split - cursor)
            cursor = split
            session = StreamSession.restore(
                json.loads(json.dumps(session.snapshot())), _dataset(7)
            )
        session.observe_many(cursor, HORIZON - cursor)
        result = session.finalize()
        assert np.array_equal(ref.releases, result.releases)
        assert ref.total_reports == result.total_reports


class TestAccountantRestoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=29),
    )
    def test_ledger_roundtrip_preserves_remaining_budget(
        self, window, charges, raw_split
    ):
        """Restoring the accountant at any point leaves the remaining
        window budget — hence future charge decisions — unchanged."""
        split = min(raw_split, len(charges))
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=window)
        twin = None
        for t, eps in enumerate(charges):
            acc.charge(t, None, eps)
            if t + 1 == split:
                twin = WEventAccountant(n_users=5, epsilon=1.0, window=window)
                twin.load_state(
                    json.loads(json.dumps(acc.state_dict()))
                )
        if twin is None:
            twin = WEventAccountant(n_users=5, epsilon=1.0, window=window)
            twin.load_state(json.loads(json.dumps(acc.state_dict())))
        else:
            for t in range(split, len(charges)):
                twin.charge(t, None, charges[t])
        assert twin.max_window_spend == acc.max_window_spend
        assert twin.total_charges == acc.total_charges
        assert twin.window_spend(0) == acc.window_spend(0)
        assert np.array_equal(twin.spend_snapshot(), acc.spend_snapshot())


class TestWALProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=5),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=40),
    )
    def test_commit_replay_truncate_roundtrip(
        self, tmp_path_factory, chunk_sizes, raw_mark
    ):
        """Any chunking commits a replayable log; truncating to any
        committed watermark keeps exactly the rows below it."""
        path = tmp_path_factory.mktemp("wal") / "log.wal"
        t = 0
        with ReleaseWAL(path) as wal:
            for size in chunk_sizes:
                for _ in range(size):
                    wal.append(t, [float(t), 1.0 - t], "publish")
                    t += 1
                wal.commit(t)
        rows, watermark = replay_wal(path)
        assert watermark == t
        assert [row["t"] for row in rows] == list(range(t))

        mark = min(raw_mark, t)
        kept = truncate_wal(path, mark)
        assert kept == mark
        rows, watermark = replay_wal(path)
        assert watermark == mark
        assert [row["t"] for row in rows] == list(range(mark))
