"""Unit tests for the numeric (mean-estimation) LDP mechanisms."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.query import (
    DuchiMechanism,
    HybridMechanism,
    PiecewiseMechanism,
    get_numeric_mechanism,
)

ALL = [DuchiMechanism, PiecewiseMechanism, HybridMechanism]


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_numeric_mechanism("duchi"), DuchiMechanism)
        assert isinstance(get_numeric_mechanism("piecewise"), PiecewiseMechanism)
        assert isinstance(get_numeric_mechanism("hybrid"), HybridMechanism)

    def test_passthrough(self):
        mech = DuchiMechanism()
        assert get_numeric_mechanism(mech) is mech

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            get_numeric_mechanism("laplace")


@pytest.mark.parametrize("mechanism_cls", ALL)
class TestCommonContract:
    def test_unbiased_mean(self, mechanism_cls, rng):
        mech = mechanism_cls()
        values = rng.uniform(-0.5, 0.5, size=60_000)
        reports = mech.perturb(values, 1.0, rng=rng)
        assert mech.estimate_mean(reports) == pytest.approx(
            values.mean(), abs=0.03
        )

    def test_unbiased_at_extremes(self, mechanism_cls, rng):
        mech = mechanism_cls()
        values = np.full(60_000, 0.8)
        reports = mech.perturb(values, 1.0, rng=rng)
        assert reports.mean() == pytest.approx(0.8, abs=0.04)

    def test_empirical_variance_bounded_by_worst_case(self, mechanism_cls, rng):
        mech = mechanism_cls()
        n, eps = 2_000, 1.0
        values = rng.uniform(-1, 1, size=n)
        means = [
            mech.perturb(values, eps, rng=rng).mean() for _ in range(200)
        ]
        assert np.var(means) <= mech.variance(eps, n) * 1.3

    def test_rejects_out_of_range(self, mechanism_cls):
        with pytest.raises(InvalidParameterError):
            mechanism_cls().perturb(np.array([1.5]), 1.0)

    def test_rejects_bad_epsilon(self, mechanism_cls):
        with pytest.raises(InvalidParameterError):
            mechanism_cls().perturb(np.array([0.0]), 0.0)

    def test_variance_decreases_with_n_and_eps(self, mechanism_cls):
        mech = mechanism_cls()
        assert mech.variance(1.0, 2_000) < mech.variance(1.0, 1_000)
        assert mech.variance(2.0, 1_000) < mech.variance(1.0, 1_000)

    def test_empty_reports_rejected(self, mechanism_cls):
        with pytest.raises(InvalidParameterError):
            mechanism_cls().estimate_mean(np.empty(0))


class TestDuchi:
    def test_binary_output(self, rng):
        mech = DuchiMechanism()
        reports = mech.perturb(rng.uniform(-1, 1, size=100), 1.0, rng=rng)
        assert len(np.unique(np.abs(reports))) == 1

    def test_output_magnitude(self, rng):
        import math

        mech = DuchiMechanism()
        reports = mech.perturb(np.zeros(10), 1.0, rng=rng)
        e = math.exp(1.0)
        assert np.abs(reports[0]) == pytest.approx((e + 1) / (e - 1))


class TestPiecewise:
    def test_output_within_extended_range(self, rng):
        import math

        mech = PiecewiseMechanism()
        eps = 2.0
        s = math.exp(eps / 2)
        c = (s + 1) / (s - 1)
        reports = mech.perturb(rng.uniform(-1, 1, size=500), eps, rng=rng)
        assert np.abs(reports).max() <= c + 1e-9

    def test_concentrates_near_truth_at_high_eps(self, rng):
        mech = PiecewiseMechanism()
        reports = mech.perturb(np.full(2_000, 0.5), 6.0, rng=rng)
        assert np.median(np.abs(reports - 0.5)) < 0.2


class TestHybrid:
    def test_small_eps_equals_duchi_support(self, rng):
        mech = HybridMechanism()
        reports = mech.perturb(rng.uniform(-1, 1, size=200), 0.4, rng=rng)
        assert len(np.unique(np.abs(reports))) == 1  # pure Duchi regime

    def test_beats_or_matches_duchi_at_high_eps(self):
        hybrid, duchi = HybridMechanism(), DuchiMechanism()
        assert hybrid.variance(4.0, 1_000) < duchi.variance(4.0, 1_000)
