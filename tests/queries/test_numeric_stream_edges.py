"""Edge cases for the mean-query stream machinery."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.query import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    NumericStream,
    make_sine_numeric_stream,
)


class TestNumericStreamEdges:
    def test_boundary_values_accepted(self):
        stream = NumericStream(np.array([[-1.0, 1.0, 0.0]]))
        assert stream.n_users == 3

    def test_single_timestep(self):
        stream = NumericStream(np.zeros((1, 100)))
        result = MeanPopulationUniform().run(stream, 1.0, 5, seed=0)
        assert result.releases.shape == (1,)

    def test_1d_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            NumericStream(np.zeros(10))

    def test_generator_clipping(self):
        stream = make_sine_numeric_stream(
            n_users=500, horizon=20, amplitude=0.9, noise_std=0.5, seed=1
        )
        for t in range(20):
            values = stream.values(t)
            assert values.min() >= -1.0
            assert values.max() <= 1.0


class TestMeanSessionEdges:
    def test_window_one(self):
        stream = make_sine_numeric_stream(n_users=400, horizon=10, seed=2)
        for runner in (MeanPopulationUniform(), MeanPopulationAbsorption()):
            result = runner.run(stream, 1.0, 1, seed=2)
            assert np.isfinite(result.releases).all()

    def test_window_larger_than_horizon(self):
        stream = make_sine_numeric_stream(n_users=2_000, horizon=5, seed=2)
        result = MeanPopulationAbsorption().run(stream, 1.0, 20, seed=2)
        assert result.releases.shape == (5,)

    def test_results_deterministic_under_seed(self):
        stream = make_sine_numeric_stream(n_users=2_000, horizon=30, seed=3)
        a = MeanPopulationAbsorption().run(stream, 1.0, 5, seed=11)
        b = MeanPopulationAbsorption().run(stream, 1.0, 5, seed=11)
        assert np.array_equal(a.releases, b.releases)

    def test_mse_decreases_with_epsilon(self):
        stream = make_sine_numeric_stream(n_users=6_000, horizon=60, seed=3)
        low = np.mean(
            [
                MeanPopulationUniform().run(stream, 0.3, 10, seed=s).mse
                for s in range(4)
            ]
        )
        high = np.mean(
            [
                MeanPopulationUniform().run(stream, 3.0, 10, seed=s).mse
                for s in range(4)
            ]
        )
        assert high < low
