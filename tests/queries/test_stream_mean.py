"""Tests for w-event LDP mean release over streams (MPU / MPA)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, StreamAccessError
from repro.query import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    NumericStream,
    make_sine_numeric_stream,
)


@pytest.fixture
def sine_stream():
    return make_sine_numeric_stream(
        n_users=4_000, horizon=80, amplitude=0.3, period=60, seed=5
    )


class TestNumericStream:
    def test_shape_properties(self, sine_stream):
        assert sine_stream.n_users == 4_000
        assert sine_stream.horizon == 80
        assert sine_stream.values(0).shape == (4_000,)

    def test_true_means_tracks_process(self, sine_stream):
        means = sine_stream.true_means()
        assert means.shape == (80,)
        assert means.max() > 0.2
        assert means.min() < -0.2

    def test_rejects_out_of_range_values(self):
        with pytest.raises(InvalidParameterError):
            NumericStream(np.array([[2.0, 0.0]]))

    def test_rejects_bad_timestamp(self, sine_stream):
        with pytest.raises(StreamAccessError):
            sine_stream.values(80)


class TestMPU:
    def test_tracks_mean(self, sine_stream):
        result = MeanPopulationUniform().run(sine_stream, 1.0, 10, seed=1)
        assert result.mse < 0.05

    def test_every_step_publishes(self, sine_stream):
        result = MeanPopulationUniform().run(sine_stream, 1.0, 10, seed=1)
        assert all(r.strategy == "publish" for r in result.records)

    def test_cfpu_is_inverse_window(self, sine_stream):
        result = MeanPopulationUniform().run(sine_stream, 1.0, 10, seed=1)
        assert result.cfpu == pytest.approx(1 / 10, rel=0.01)

    def test_invalid_parameters(self, sine_stream):
        with pytest.raises(InvalidParameterError):
            MeanPopulationUniform().run(sine_stream, 0.0, 10)
        with pytest.raises(InvalidParameterError):
            MeanPopulationUniform().run(sine_stream, 1.0, 0)


class TestMPA:
    def test_tracks_mean(self, sine_stream):
        result = MeanPopulationAbsorption().run(sine_stream, 1.0, 10, seed=1)
        assert result.mse < 0.05

    def test_approximates_on_constant_stream(self, rng):
        values = np.clip(rng.normal(0.2, 0.05, size=(60, 4_000)), -1, 1)
        stream = NumericStream(values)
        result = MeanPopulationAbsorption().run(stream, 1.0, 10, seed=1)
        publishes = sum(1 for r in result.records if r.strategy == "publish")
        assert publishes < 30  # mostly approximation on a flat stream

    def test_communication_below_uniform(self, sine_stream):
        mpa = MeanPopulationAbsorption().run(sine_stream, 1.0, 10, seed=1)
        mpu = MeanPopulationUniform().run(sine_stream, 1.0, 10, seed=1)
        assert mpa.total_reports < mpu.total_reports * 1.05

    def test_window_report_bound(self, sine_stream):
        """No more than N reports in any window (each user once)."""
        w = 10
        result = MeanPopulationAbsorption().run(sine_stream, 1.0, w, seed=1)
        reporters = [r.reporters for r in result.records]
        for start in range(len(reporters) - w + 1):
            assert sum(reporters[start : start + w]) <= sine_stream.n_users

    def test_needs_enough_users(self):
        stream = NumericStream(np.zeros((10, 5)))
        with pytest.raises(InvalidParameterError):
            MeanPopulationAbsorption().run(stream, 1.0, 10)

    @pytest.mark.parametrize("numeric", ["duchi", "piecewise", "hybrid"])
    def test_all_numeric_mechanisms(self, sine_stream, numeric):
        result = MeanPopulationAbsorption(numeric_mechanism=numeric).run(
            sine_stream, 1.0, 10, seed=2
        )
        assert np.isfinite(result.releases).all()
