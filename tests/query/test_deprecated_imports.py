"""The old ``repro.queries`` package warns but still works."""

import importlib
import sys
import warnings

import pytest


def _fresh_import(module: str):
    """Import ``module`` with the shim cache cleared, so the module-level
    DeprecationWarning fires even if another test imported it first."""
    for name in list(sys.modules):
        if name == "repro.queries" or name.startswith("repro.queries."):
            del sys.modules[name]
    return importlib.import_module(module)


@pytest.mark.parametrize(
    "module",
    ["repro.queries", "repro.queries.numeric", "repro.queries.stream_mean"],
)
def test_old_module_warns_deprecation(module):
    with pytest.warns(DeprecationWarning, match="repro.quer"):
        _fresh_import(module)


def test_old_names_are_the_new_objects():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import("repro.queries")
        legacy_numeric = _fresh_import("repro.queries.numeric")
        legacy_mean = _fresh_import("repro.queries.stream_mean")
    import repro.query as query
    from repro.query import numeric, stream_mean

    assert legacy.DuchiMechanism is numeric.DuchiMechanism
    assert legacy.get_numeric_mechanism is numeric.get_numeric_mechanism
    assert legacy.NumericStream is stream_mean.NumericStream
    assert legacy.MeanSessionResult is stream_mean.MeanSessionResult
    assert legacy_numeric.PiecewiseMechanism is numeric.PiecewiseMechanism
    assert legacy_mean.make_sine_numeric_stream is (
        stream_mean.make_sine_numeric_stream
    )
    # and the canonical package re-exports them too
    assert query.DuchiMechanism is numeric.DuchiMechanism


def test_old_package_all_still_importable():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import("repro.queries")
    for name in legacy.__all__:
        assert getattr(legacy, name) is not None


def test_legacy_objects_still_run():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import("repro.queries")
    import numpy as np

    mech = legacy.get_numeric_mechanism("duchi")
    reports = mech.perturb(np.full(256, 0.5), 1.0, rng=11)
    estimate = mech.estimate_mean(np.asarray(reports))
    assert -1.0 <= estimate <= 1.5
