"""Query DSL: AST validation, wire form, and text syntax round trips."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.query import (
    Changepoint,
    Filter,
    GroupBy,
    Join,
    Point,
    Range,
    Sliding,
    Threshold,
    TopK,
    format_expr,
    parse_expr,
    pin_t,
    query_from_request,
    query_from_wire,
)

ROUND_TRIP_EXPRS = [
    "point(3)",
    "point(3) @ t=17",
    "topk(5)",
    "topk(5) @ t=200",
    "topk(5) where item in {0..9} @ t=200",
    "topk(2) where item in {1, 4, 6}",
    "range(0, 10)",
    "range(2, 7) @ t=5",
    "range(0, 10) where item in {0..4} @ t=3",
    "sum(2) @ 0..3",
    "mean(2) @ 10..40",
    "max(0) @ 1..2",
    "groupby(low: {0..3}; high: {4..7})",
    "groupby(a: {0, 2}; b: {5}) @ t=12",
    "join(diff, 2, 10..40, left, right)",
    "join(corr, 2, 10..40, a, b)",
    "changepoint(2, drift=0.01, threshold=0.1)",
    "changepoint(2, drift=0.01, threshold=0.1) @ 3..9",
    "threshold(point(3) > 0.2, sigmas=2)",
    "threshold(range(0, 4) <= 0.5)",
    "threshold(point(1) where item in {0..3} >= 0.1, sigmas=1.5)",
    "threshold(mean(2) @ 0..9 < 0.25)",
]


@pytest.mark.parametrize("expr", ROUND_TRIP_EXPRS)
def test_text_round_trip(expr):
    query = parse_expr(expr)
    assert parse_expr(format_expr(query)) == query
    # str() is the text syntax
    assert str(query) == format_expr(query)


@pytest.mark.parametrize("expr", ROUND_TRIP_EXPRS)
def test_wire_round_trip(expr):
    query = parse_expr(expr)
    wire = query.to_wire()
    json.dumps(wire)  # must be JSON-serializable
    assert query_from_wire(wire) == query
    # the wire form parses from a plain JSON round trip too
    assert query_from_wire(json.loads(json.dumps(wire))) == query


def test_wire_field_names_match_engine_methods():
    assert Point(3, t=7).to_wire() == {"op": "point", "item": 3, "t": 7}
    assert TopK(5).to_wire() == {"op": "topk", "k": 5}
    assert Range(2, 9, t=1).to_wire() == {
        "op": "range",
        "lo": 2,
        "hi": 9,
        "t": 1,
    }
    assert Sliding(4, 0, 9, agg="mean").to_wire() == {
        "op": "sliding",
        "item": 4,
        "t0": 0,
        "t1": 9,
        "agg": "mean",
    }


def test_wire_defaults_match_engine_defaults():
    assert query_from_wire({"op": "topk"}) == TopK(5)
    assert query_from_wire({"op": "sliding", "item": 1, "t0": 0, "t1": 3}) \
        == Sliding(1, 0, 3, agg="sum")
    assert query_from_wire(
        {"op": "threshold",
         "query": {"op": "point", "item": 0},
         "cmp": ">", "value": 0.5}
    ).sigmas == 0.0


def test_item_range_set_is_inclusive():
    query = parse_expr("topk(3) where item in {2..5}")
    assert query.items == (2, 3, 4, 5)


def test_set_entries_sorted_and_deduplicated():
    assert Filter(TopK(2), [5, 1, 5, 3]).items == (1, 3, 5)


@pytest.mark.parametrize(
    "build",
    [
        lambda: Point(-1),
        lambda: Point("x"),
        lambda: TopK(0),
        lambda: Range(4, 2),
        lambda: Range(-1, 2),
        lambda: Sliding(1, 5, 2),
        lambda: Sliding(1, 0, 5, agg="median"),
        lambda: Filter(TopK(2), []),
        lambda: Filter(GroupBy((("a", (0,)),)), (0,)),
        lambda: Filter(Point(7), (0, 1)),  # item outside the filter set
        lambda: GroupBy(()),
        lambda: GroupBy((("a", (0,)), ("a", (1,)))),  # duplicate name
        lambda: GroupBy((("", (0,)),)),
        lambda: Join("", "b", 0, 0, 5),
        lambda: Join("a", "b", 0, 0, 5, how="zip"),
        lambda: Join("a", "b", 0, 9, 5),
        lambda: Changepoint(0, -0.1, 1.0),
        lambda: Changepoint(0, 0.1, 0.0),
        lambda: Changepoint(0, 0.1, 1.0, t0=9, t1=5),
        lambda: Threshold(TopK(3), ">", 0.5),  # not scalar-valued
        lambda: Threshold(Point(0), "!=", 0.5),
        lambda: Threshold(Point(0), ">", float("nan")),
        lambda: Threshold(Point(0), ">", 0.5, sigmas=-1.0),
    ],
)
def test_node_validation_raises_invalid_parameter(build):
    with pytest.raises(InvalidParameterError):
        build()


@pytest.mark.parametrize(
    "expr",
    [
        "",
        "   ",
        "frobnicate(3)",
        "point()",
        "point(3) @ 1..5",       # point takes @ t=T, not a span
        "sum(2)",                 # sliding needs a span
        "sum(2) @ t=3",
        "topk(5) where item in {}",
        "topk(5) where item in {5..2}",
        "point(3) trailing",
        "threshold(point(0) ! 0.5)",
        "threshold(topk(3) > 0.5)",
        "join(zip, 2, 0..5, a, b)",
        "point(3.5)",
        "range(0 10)",
    ],
)
def test_parse_errors_are_invalid_parameter(expr):
    with pytest.raises(InvalidParameterError):
        parse_expr(expr)


def test_float_tokens_do_not_eat_span_dots():
    # `10..40` must lex as INT DOTDOT INT, not FLOAT(10.) '.' 40.
    query = parse_expr("mean(2) @ 10..40")
    assert (query.t0, query.t1) == (10, 40)
    thr = parse_expr("threshold(point(0) > 0.25, sigmas=1.5)")
    assert thr.value == 0.25 and thr.sigmas == 1.5


def test_negative_threshold_values_parse():
    assert parse_expr("threshold(point(0) > -0.5)").value == -0.5


def test_query_from_request_envelope():
    direct = query_from_request({"op": "point", "item": 2})
    assert direct == Point(2)
    via_expr = query_from_request({"op": "query", "expr": "point(2)"})
    assert via_expr == Point(2)
    via_wire = query_from_request(
        {"op": "query", "q": {"op": "point", "item": 2}}
    )
    assert via_wire == Point(2)
    with pytest.raises(InvalidParameterError):
        query_from_request({"op": "query"})
    with pytest.raises(InvalidParameterError):
        query_from_request({"op": "query", "expr": 7})
    with pytest.raises(InvalidParameterError):
        query_from_request({"op": "mystery"})
    with pytest.raises(InvalidParameterError):
        query_from_request("point(2)")


def test_wire_missing_required_fields():
    for bad in [
        {"op": "point"},
        {"op": "range", "lo": 0},
        {"op": "sliding", "item": 1, "t0": 0},
        {"op": "filter", "items": [1]},
        {"op": "groupby", "groups": [["a", [0]]]},  # must be an object
        {"op": "join", "left": "a", "right": "b", "item": 0, "t0": 0},
        {"op": "changepoint", "item": 0, "drift": 0.1},
        {"op": "threshold", "query": {"op": "point", "item": 0}},
    ]:
        with pytest.raises(InvalidParameterError):
            query_from_wire(bad)


def test_groupby_wire_preserves_group_order():
    wire = GroupBy((("z", (1,)), ("a", (0, 2)))).to_wire()
    assert list(wire["groups"]) == ["z", "a"]
    assert query_from_wire(wire).groups == (("z", (1,)), ("a", (0, 2)))


def test_pin_t():
    assert pin_t(Point(3), 9) == Point(3, t=9)
    assert pin_t(TopK(2), 4) == TopK(2, t=4)
    assert pin_t(Filter(Range(0, 4), (1, 2)), 7) == Filter(
        Range(0, 4, t=7), (1, 2)
    )
    pinned = pin_t(Threshold(Point(1), ">", 0.5), 11)
    assert pinned.query == Point(1, t=11)
    with pytest.raises(InvalidParameterError):
        pin_t(Sliding(0, 0, 5), 3)
    with pytest.raises(InvalidParameterError):
        pin_t(Join("a", "b", 0, 0, 5), 3)


def test_frozen_nodes_are_hashable_and_immutable():
    query = Point(3, t=1)
    assert hash(query) == hash(Point(3, t=1))
    with pytest.raises(AttributeError):
        query.item = 4
