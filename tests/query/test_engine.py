"""QueryEngine math: interval propagation, ties, ranges, sliding spans."""

import numpy as np
import pytest
from statistics import NormalDist

from repro.exceptions import EvictedSpanError, InvalidParameterError
from repro.query import IntervalEstimate, QueryEngine, ReleaseStore

Z95 = NormalDist().inv_cdf(0.975)


def _store(rows, variances, strategies=None):
    store = ReleaseStore(rows.shape[1])
    for t, row in enumerate(rows):
        strat = "publish" if strategies is None else strategies[t]
        store.append(t, row, variances[t], strat)
    return store


@pytest.fixture
def simple_engine(rng):
    rows = rng.random((20, 6))
    variances = np.full(20, 0.04)
    return QueryEngine(_store(rows, variances)), rows, variances


class TestPoint:
    def test_estimate_and_interval(self, simple_engine):
        engine, rows, variances = simple_engine
        answer = engine.point(3, t=7)
        assert answer.estimate == rows[7, 3]
        assert answer.stderr == pytest.approx(np.sqrt(variances[7]))
        half = Z95 * answer.stderr
        assert answer.ci_low == pytest.approx(answer.estimate - half)
        assert answer.ci_high == pytest.approx(answer.estimate + half)

    def test_defaults_to_latest(self, simple_engine):
        engine, rows, _ = simple_engine
        assert engine.point(0).estimate == rows[19, 0]

    def test_item_bounds(self, simple_engine):
        engine, _, _ = simple_engine
        with pytest.raises(InvalidParameterError):
            engine.point(6)
        with pytest.raises(InvalidParameterError):
            engine.point(-1)

    def test_confidence_scales_interval(self, rng):
        rows = rng.random((5, 4))
        store = _store(rows, np.full(5, 0.09))
        wide = QueryEngine(store, confidence=0.99).point(1)
        narrow = QueryEngine(store, confidence=0.5).point(1)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_invalid_confidence_rejected(self, rng):
        store = _store(rng.random((2, 4)), np.full(2, 0.1))
        with pytest.raises(InvalidParameterError):
            QueryEngine(store, confidence=1.0)


class TestTopK:
    def test_ranked_descending(self, simple_engine):
        engine, rows, _ = simple_engine
        entries = engine.topk(3, t=5)
        assert [e.rank for e in entries] == [1, 2, 3]
        values = [e.interval.estimate for e in entries]
        assert values == sorted(values, reverse=True)
        assert entries[0].item == int(np.argmax(rows[5]))

    def test_ties_break_toward_smaller_item(self):
        rows = np.array([[0.25, 0.5, 0.5, 0.25, 0.5]])
        engine = QueryEngine(_store(rows, [0.01]))
        items = [e.item for e in engine.topk(3, t=0)]
        assert items == [1, 2, 4]

    def test_k_bounds(self, simple_engine):
        engine, _, _ = simple_engine
        with pytest.raises(InvalidParameterError):
            engine.topk(0)
        with pytest.raises(InvalidParameterError):
            engine.topk(7)

    def test_k_equals_domain_is_full_ranking(self, simple_engine):
        engine, rows, _ = simple_engine
        items = [e.item for e in engine.topk(6, t=0)]
        assert sorted(items) == list(range(6))


class TestRange:
    def test_sum_and_variance_scale(self, simple_engine):
        engine, rows, variances = simple_engine
        answer = engine.range_count(1, 4, t=3)
        assert answer.estimate == pytest.approx(rows[3, 1:4].sum())
        assert answer.stderr == pytest.approx(np.sqrt(3 * variances[3]))

    def test_empty_range_is_zero_with_zero_width(self, simple_engine):
        engine, _, _ = simple_engine
        answer = engine.range_count(2, 2)
        assert answer.estimate == 0.0
        assert answer.stderr == 0.0
        assert answer.ci_low == answer.ci_high == 0.0

    def test_full_domain_range(self, simple_engine):
        engine, rows, _ = simple_engine
        assert engine.range_count(0, 6, t=0).estimate == pytest.approx(
            rows[0].sum()
        )

    def test_invalid_bounds(self, simple_engine):
        engine, _, _ = simple_engine
        for lo, hi in [(-1, 3), (2, 7), (4, 2)]:
            with pytest.raises(InvalidParameterError):
                engine.range_count(lo, hi)


class TestSliding:
    def test_sum_mean_match_naive(self, rng):
        rows = rng.random((25, 4))
        engine = QueryEngine(_store(rows, np.full(25, 0.01)))
        total = engine.sliding(4, 18, "sum", item=2)
        mean = engine.sliding(4, 18, "mean", item=2)
        assert total.estimate == pytest.approx(rows[4:19, 2].sum())
        assert mean.estimate == pytest.approx(rows[4:19, 2].mean())
        assert mean.stderr == pytest.approx(total.stderr / 15)

    def test_max_picks_cellwise_max_and_its_variance(self, rng):
        rows = rng.random((10, 3))
        variances = np.linspace(0.01, 0.1, 10)
        engine = QueryEngine(_store(rows, variances))
        answer = engine.sliding(2, 9, "max", item=1)
        arg = 2 + int(np.argmax(rows[2:10, 1]))
        assert answer.estimate == rows[arg, 1]
        assert answer.stderr == pytest.approx(np.sqrt(variances[arg]))

    def test_independent_publications_variance_adds(self):
        rows = np.ones((4, 3))
        variances = [0.1, 0.2, 0.3, 0.4]
        engine = QueryEngine(_store(rows, variances))  # all fresh publishes
        answer = engine.sliding(0, 3, "sum", item=0)
        assert answer.stderr == pytest.approx(np.sqrt(sum(variances)))

    def test_rerelease_correlation_squares_run_length(self):
        # One publication repeated 4 times: the same realised noise is
        # summed 4x, so sd(sum) = 4·sd, not sqrt(4)·sd.
        rows = np.ones((4, 3))
        strategies = ["publish"] + ["approximate"] * 3
        variances = [0.09] * 4
        engine = QueryEngine(_store(rows, variances, strategies))
        answer = engine.sliding(0, 3, "sum", item=0)
        assert answer.stderr == pytest.approx(4 * 0.3)
        # Against the (wrong) independence figure sqrt(4)*0.3:
        assert answer.stderr > np.sqrt(4) * 0.3

    def test_mixed_groups(self):
        strategies = ["publish", "approximate", "publish", "approximate"]
        variances = [0.04, 0.04, 0.01, 0.01]
        engine = QueryEngine(_store(np.ones((4, 3)), variances, strategies))
        answer = engine.sliding(0, 3, "sum", item=0)
        assert answer.stderr == pytest.approx(
            np.sqrt(4 * 0.04 + 4 * 0.01)  # 2²·v1 + 2²·v2
        )

    def test_single_timestamp_span(self, rng):
        rows = rng.random((5, 3))
        engine = QueryEngine(_store(rows, np.full(5, 0.25)))
        answer = engine.sliding(2, 2, "mean", item=0)
        assert answer.estimate == rows[2, 0]
        assert answer.stderr == pytest.approx(0.5)

    def test_span_crossing_eviction_raises(self, rng):
        rows = rng.random((30, 3))
        store = ReleaseStore(3, capacity=5)
        for t, row in enumerate(rows):
            store.append(t, row, 0.1, "publish")
        engine = QueryEngine(store)
        for agg in ("sum", "mean", "max"):
            with pytest.raises(EvictedSpanError):
                engine.sliding(0, 29, agg, item=0)
        # Clamped to the ring it works.
        assert engine.sliding(25, 29, "sum", item=0).estimate == pytest.approx(
            rows[25:, 0].sum()
        )

    def test_requires_item_and_valid_agg(self, simple_engine):
        engine, _, _ = simple_engine
        with pytest.raises(InvalidParameterError):
            engine.sliding(0, 5, "sum")
        with pytest.raises(InvalidParameterError):
            engine.sliding(0, 5, "median", item=0)

    def test_vector_form_matches_scalar(self, rng):
        rows = rng.random((12, 4))
        engine = QueryEngine(_store(rows, np.full(12, 0.02)))
        estimates, stderrs = engine.sliding_vector(1, 9, "mean")
        for item in range(4):
            scalar = engine.sliding(1, 9, "mean", item=item)
            assert estimates[item] == pytest.approx(scalar.estimate)
            assert stderrs[item] == pytest.approx(scalar.stderr)


class TestEmptyStore:
    def test_latest_resolution_fails_gracefully(self):
        engine = QueryEngine(ReleaseStore(4))
        with pytest.raises(InvalidParameterError):
            engine.point(0)


class TestIntervalEstimate:
    def test_as_dict_roundtrip(self):
        iv = IntervalEstimate(estimate=0.4, stderr=0.1, confidence=0.95)
        payload = iv.as_dict()
        assert payload["estimate"] == 0.4
        assert payload["ci"] == [iv.ci_low, iv.ci_high]
        assert iv.ci_low == pytest.approx(0.4 - Z95 * 0.1)
