"""The three ``QueryEngine`` factories share one parameter contract:
the same ``confidence=`` kwarg, the same eager validation errors, and
the same capacity semantics."""

import numpy as np
import pytest

from repro.engine import StreamSession
from repro.exceptions import InvalidParameterError
from repro.query import QueryEngine, ReleaseStore
from repro.serving import ShardedSession

HORIZON = 20


@pytest.fixture(scope="module")
def result():
    from repro.streams import make_lns

    stream = make_lns(n_users=500, horizon=HORIZON, seed=7)
    session = StreamSession(
        "LBD", stream, epsilon=1.0, window=6, seed=3, horizon=HORIZON
    )
    session.start()
    for t in range(HORIZON):
        session.observe(t)
    return session.finalize()


@pytest.fixture(scope="module")
def sharded():
    session = ShardedSession(
        "lbd",
        n_users=48,
        domain_size=6,
        epsilon=1.0,
        window=6,
        num_shards=2,
        oracle="grr",
        seed=7,
        capacity=8,
        retain=HORIZON,
    ).start()
    rows = np.random.default_rng(2).integers(
        0, 6, size=(HORIZON, 48)
    )
    for i in range(0, HORIZON, 4):
        session.ingest_many(rows[i:i + 4])
    return session


def shard_args(session):
    return [s for s in session.stores], [
        int(c) for c in session.router.counts
    ]


def test_all_factories_accept_confidence(result, sharded):
    stores, users = shard_args(sharded)
    for engine in (
        QueryEngine(ReleaseStore(4), confidence=0.9),
        QueryEngine.from_result(result, confidence=0.9),
        QueryEngine.from_shards(stores, users, confidence=0.9),
    ):
        assert engine.confidence == 0.9


@pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
def test_all_factories_validate_confidence_eagerly(
    result, sharded, confidence
):
    stores, users = shard_args(sharded)
    expect = pytest.raises(
        InvalidParameterError, match=r"confidence must be in \(0, 1\)"
    )
    with expect:
        QueryEngine(ReleaseStore(4), confidence=confidence)
    with expect:
        QueryEngine.from_result(result, confidence=confidence)
    with expect:
        QueryEngine.from_shards(stores, users, confidence=confidence)


def test_from_result_bad_confidence_skips_loading(tmp_path):
    # eager validation: the artifact is never opened, so a bogus path
    # still fails on the confidence error, not a file error
    with pytest.raises(InvalidParameterError, match="confidence"):
        QueryEngine.from_result(
            tmp_path / "never-written.json", confidence=5.0
        )


def test_from_shards_capacity_default_inherits(sharded):
    stores, users = shard_args(sharded)
    engine = QueryEngine.from_shards(stores, users)
    assert engine.store.capacity == stores[0].capacity == 8


def test_from_shards_capacity_override(sharded):
    stores, users = shard_args(sharded)
    assert QueryEngine.from_shards(
        stores, users, capacity=None
    ).store.capacity is None
    engine = QueryEngine.from_shards(stores, users, capacity=4)
    assert engine.store.capacity == 4
    assert engine.store.oldest_t == HORIZON - 4


def test_from_result_capacity_bounds_retention(result):
    engine = QueryEngine.from_result(result, capacity=5)
    assert engine.store.oldest_t == HORIZON - 5
    with pytest.raises(Exception):  # evicted timestamp
        engine.point(0, t=0)


def test_default_confidence_is_95_everywhere(result, sharded):
    stores, users = shard_args(sharded)
    assert QueryEngine(ReleaseStore(4)).confidence == 0.95
    assert QueryEngine.from_result(result).confidence == 0.95
    assert QueryEngine.from_shards(stores, users).confidence == 0.95


def test_topk_default_k_matches_wire_default(sharded):
    stores, users = shard_args(sharded)
    engine = QueryEngine.from_shards(stores, users)
    assert len(engine.topk()) == 5
    assert engine.topk() == engine.topk(5)
