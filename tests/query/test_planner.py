"""Planner lowering: every DSL answer bit-identical to hand-composed
``QueryEngine``/``ReleaseStore`` calls."""

import math

import numpy as np
import pytest

from repro.analysis.changepoint import cusum_detect
from repro.exceptions import InvalidParameterError
from repro.query import (
    Changepoint,
    Filter,
    GroupBy,
    Join,
    Point,
    QueryEngine,
    QueryPlanner,
    Range,
    ReleaseStore,
    Sliding,
    Threshold,
    TopK,
    TopKEntry,
    parse_expr,
)

D = 8
T = 24


def make_store(seed: int, capacity=None) -> ReleaseStore:
    """A store with re-release runs (correlated spans) and drifting
    variance, like an adaptive mechanism writes."""
    rng = np.random.default_rng(seed)
    store = ReleaseStore(D, capacity=capacity)
    release = rng.random(D)
    release /= release.sum()
    variance = 0.01
    for t in range(T):
        publish = t == 0 or rng.random() < 0.6
        if publish:
            release = rng.random(D)
            release /= release.sum()
            variance = float(rng.uniform(0.005, 0.02))
            store.append(t, release, variance, "publish",
                         fresh_publication=True)
        else:
            store.append(t, release, variance, "approximate",
                         fresh_publication=False)
    return store


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(make_store(1))


@pytest.fixture(scope="module")
def planner(engine):
    return QueryPlanner(engine)


def same_interval(a, b):
    assert a.estimate == b.estimate
    assert a.stderr == b.stderr
    assert a.confidence == b.confidence


def test_point_bit_identical(engine, planner):
    for t in (None, 0, 13):
        same_interval(
            planner.evaluate(Point(3, t=t)), engine.point(3, t=t)
        )


def test_topk_bit_identical(engine, planner):
    got = planner.evaluate(TopK(4, t=9))
    want = engine.topk(4, t=9)
    assert got == want


def test_range_bit_identical(engine, planner):
    same_interval(
        planner.evaluate(Range(2, 7, t=5)), engine.range_count(2, 7, t=5)
    )
    same_interval(  # empty range
        planner.evaluate(Range(3, 3)), engine.range_count(3, 3)
    )


def test_sliding_bit_identical(engine, planner):
    for agg in ("sum", "mean", "max"):
        same_interval(
            planner.evaluate(Sliding(2, 4, 19, agg=agg)),
            engine.sliding(4, 19, agg, item=2),
        )


def test_filtered_point_and_sliding_are_the_plain_answer(engine, planner):
    same_interval(
        planner.evaluate(Filter(Point(2, t=7), (0, 2, 5))),
        engine.point(2, t=7),
    )
    same_interval(
        planner.evaluate(Filter(Sliding(5, 0, 9), (1, 5))),
        engine.sliding(0, 9, "sum", item=5),
    )


def test_filtered_topk_bit_identical_to_hand_composition(engine, planner):
    items = (0, 2, 3, 5, 7)
    k = 3
    t = 11
    got = planner.evaluate(Filter(TopK(k, t=t), items))
    # Hand-composed equivalent: one point() per item, ranked by
    # (-estimate, item), truncated to k.
    answers = [(i, engine.point(i, t=t)) for i in items]
    answers.sort(key=lambda pair: (-pair[1].estimate, pair[0]))
    want = [
        TopKEntry(rank=r, item=i, interval=iv)
        for r, (i, iv) in enumerate(answers[:k], start=1)
    ]
    assert got == want


def test_filtered_topk_clamps_k_to_subset(planner):
    got = planner.evaluate(Filter(TopK(5, t=3), (1, 6)))
    assert [e.rank for e in got] == [1, 2]


def test_filtered_range_is_subset_sum(engine, planner):
    items = (0, 1, 4, 6, 7)
    t = 9
    got = planner.evaluate(Filter(Range(0, 6, t=t), items))
    subset = [i for i in items if 0 <= i < 6]
    estimate = 0.0
    for i in subset:
        estimate += engine.point(i, t=t).estimate
    stderr = math.sqrt(len(subset) * engine.store.variance_at(t))
    assert got.estimate == estimate
    assert got.stderr == stderr


def test_filtered_range_empty_intersection_is_zero(planner):
    got = planner.evaluate(Filter(Range(0, 2, t=4), (5, 6)))
    assert (got.estimate, got.stderr) == (0.0, 0.0)


def test_store_subset_sum_matches_sequential_point_reads(engine):
    items = (1, 3, 4, 7)
    t = 11
    want = 0.0
    for i in items:
        want += engine.point(i, t=t).estimate
    assert engine.store.subset_sum(t, items) == want


def test_store_subset_sum_validates_items(engine):
    with pytest.raises(InvalidParameterError, match="outside the domain"):
        engine.store.subset_sum(3, (0, D))
    with pytest.raises(InvalidParameterError, match="must be an int"):
        engine.store.subset_sum(3, (0, 1.5))


def test_filtered_range_explain_reports_fused_operator(planner):
    plan = planner.plan(Filter(Range(0, 6, t=9), (0, 1, 4, 6, 7)))
    assert any("subset_sum" in step and "fused" in step
               for step in plan.steps)
    # The fused plan replaces the per-item point calls entirely.
    assert not any(step.startswith("point(") for step in plan.steps)


def test_groupby_explain_reports_fused_operator(planner):
    plan = planner.plan(GroupBy((("lo", (0, 1)), ("hi", (6, 7))), t=5))
    assert all("subset_sum" in step and "fused" in step
               for step in plan.steps)


def test_subset_sum_on_empty_store_raises():
    planner = QueryPlanner(QueryEngine(ReleaseStore(D)))
    with pytest.raises(InvalidParameterError, match="release store is empty"):
        planner.evaluate(GroupBy((("g", (0, 1)),)))


def test_groupby_bit_identical_to_subset_sums(engine, planner):
    groups = (("low", (0, 1, 2)), ("high", (5, 7)))
    t = 14
    got = planner.evaluate(GroupBy(groups, t=t))
    assert list(got) == ["low", "high"]
    for name, items in groups:
        estimate = 0.0
        for i in items:
            estimate += engine.point(i, t=t).estimate
        assert got[name].estimate == estimate
        assert got[name].stderr == math.sqrt(
            len(items) * engine.store.variance_at(t)
        )


def test_join_diff_bit_identical():
    left = QueryEngine(make_store(1))
    right = QueryEngine(make_store(2))
    planner = QueryPlanner({"left": left, "right": right})
    got = planner.evaluate(Join("left", "right", 3, 5, 18))
    a = left.sliding(5, 18, "mean", item=3)
    b = right.sliding(5, 18, "mean", item=3)
    assert got.estimate == a.estimate - b.estimate
    assert got.stderr == float(np.hypot(a.stderr, b.stderr))


def test_join_corr_bit_identical():
    left = QueryEngine(make_store(1))
    right = QueryEngine(make_store(2))
    planner = QueryPlanner({"left": left, "right": right})
    got = planner.evaluate(Join("left", "right", 3, 5, 18, how="corr"))
    a = left.store.span_releases(5, 18)[:, 3]
    b = right.store.span_releases(5, 18)[:, 3]
    da, db = a - a.mean(), b - b.mean()
    r = float(da @ db) / math.sqrt(float(da @ da) * float(db @ db))
    n = 18 - 5 + 1
    assert got.estimate == r
    assert got.stderr == (1.0 - r * r) / math.sqrt(n - 3)
    assert -1.0 <= got.estimate <= 1.0


def test_join_corr_needs_four_timestamps():
    engine = QueryEngine(make_store(1))
    planner = QueryPlanner({"a": engine, "b": engine})
    with pytest.raises(InvalidParameterError, match="at least 4"):
        planner.plan(Join("a", "b", 0, 5, 7, how="corr"))


def test_changepoint_matches_cusum_detect(engine, planner):
    got = planner.evaluate(Changepoint(2, 0.002, 0.05, t0=3, t1=20))
    series = engine.store.span_releases(3, 20)[:, 2]
    want = cusum_detect(series, 0.002, 0.05)
    assert got.alarms == tuple(3 + a for a in want)
    # defaults: full retained span
    full = planner.evaluate(Changepoint(2, 0.002, 0.05))
    assert (full.t0, full.t1) == (0, T - 1)
    assert full.alarms == tuple(
        a for a in cusum_detect(
            engine.store.span_releases(0, T - 1)[:, 2], 0.002, 0.05
        )
    )


def test_threshold_noise_multiple_rule(engine, planner):
    iv = engine.point(4, t=10)
    for sigmas in (0.0, 1.0, 3.0):
        margin = sigmas * iv.stderr
        for cmp, want in (
            (">", iv.estimate - margin > 0.1),
            (">=", iv.estimate - margin >= 0.1),
            ("<", iv.estimate + margin < 0.1),
            ("<=", iv.estimate + margin <= 0.1),
        ):
            got = planner.evaluate(
                Threshold(Point(4, t=10), cmp, 0.1, sigmas=sigmas)
            )
            assert got.triggered == want
            assert got.margin == margin
            same_interval(got.interval, iv)


def test_parsed_expression_answers_equal_constructed_ast(planner):
    for expr, query in [
        ("point(3) @ t=13", Point(3, t=13)),
        ("topk(4) where item in {0..5}", Filter(TopK(4), tuple(range(6)))),
        ("threshold(point(0) > 0.05, sigmas=2)",
         Threshold(Point(0), ">", 0.05, sigmas=2.0)),
    ]:
        assert planner.answer(parse_expr(expr)) == planner.answer(query)


def test_answer_shapes_match_legacy_serve_replies(engine, planner):
    point = planner.answer(Point(1, t=5))
    assert point == {
        "op": "point",
        "item": 1,
        **engine.point(1, t=5).as_dict(),
    }
    topk = planner.answer(TopK(2, t=5))
    assert topk == {
        "op": "topk",
        "items": [e.as_dict() for e in engine.topk(2, t=5)],
    }
    rng_ = planner.answer(Range(1, 4, t=5))
    assert rng_ == {
        "op": "range",
        "lo": 1,
        "hi": 4,
        **engine.range_count(1, 4, t=5).as_dict(),
    }
    sliding = planner.answer(Sliding(1, 2, 9, agg="mean"))
    assert sliding == {
        "op": "sliding",
        "item": 1,
        **engine.sliding(2, 9, "mean", item=1).as_dict(),
    }


def test_composite_answer_shapes(planner):
    filtered = planner.answer(Filter(TopK(2, t=5), (0, 1, 2)))
    assert filtered["op"] == "topk" and filtered["where"] == [0, 1, 2]
    grouped = planner.answer(GroupBy((("a", (0, 1)),), t=5))
    assert set(grouped["groups"]) == {"a"}
    assert grouped["t"] == 5
    alarmed = planner.answer(Changepoint(0, 0.002, 0.05))
    assert alarmed["op"] == "changepoint"
    assert isinstance(alarmed["alarms"], list)
    verdict = planner.answer(Threshold(Point(0), ">", 0.0))
    assert verdict["triggered"] in (True, False)
    assert verdict["query"] == {"op": "point", "item": 0}


def test_plan_explains_primitive_steps(planner):
    plan = planner.plan(Filter(TopK(2, t=5), (0, 3)))
    assert plan.steps
    assert any("point" in step for step in plan.steps)
    assert plan.run() == planner.evaluate(Filter(TopK(2, t=5), (0, 3)))


def test_unknown_source_raises(planner):
    with pytest.raises(InvalidParameterError, match="unknown source"):
        planner.plan(Point(0, source="nope"))


def test_multi_source_planner_requires_default_or_source():
    engines = {"a": QueryEngine(make_store(1)),
               "b": QueryEngine(make_store(2))}
    planner = QueryPlanner(engines)
    with pytest.raises(InvalidParameterError, match="no default"):
        planner.plan(Point(0))
    assert QueryPlanner(engines, default="b").evaluate(
        Point(0)
    ).estimate == engines["b"].point(0).estimate
    with pytest.raises(InvalidParameterError):
        QueryPlanner(engines, default="zzz")


def test_planner_rejects_non_engines():
    with pytest.raises(InvalidParameterError):
        QueryPlanner({})
    with pytest.raises(InvalidParameterError):
        QueryPlanner({"a": object()})
