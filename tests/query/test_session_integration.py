"""The query layer wired through live sessions, groups, and saved runs."""

import numpy as np
import pytest

from repro.engine import SessionGroup, StreamSession, run_stream
from repro.exceptions import InvalidParameterError
from repro.mechanisms import available_mechanisms
from repro.query import PRIOR_VARIANCE, QueryEngine, ReleaseStore
from repro.streams import OnlineStream


def _run_with_store(stream, mechanism="LBD", seed=3, capacity=None, horizon=40):
    session = StreamSession(
        mechanism, stream, epsilon=1.0, window=10, seed=seed, horizon=horizon
    )
    store = session.attach_store(capacity)
    session.start()
    for t in range(horizon):
        session.observe(t)
    return session, store


class TestSessionStore:
    def test_store_matches_finalized_trace(self, small_binary_stream):
        session, store = _run_with_store(small_binary_stream)
        result = session.finalize()
        assert len(store) == result.horizon
        for t in range(result.horizon):
            np.testing.assert_array_equal(
                store.release_at(t), result.releases[t]
            )
            assert store.strategy_at(t) == result.records[t].strategy

    def test_from_result_is_bit_identical_to_live_store(
        self, small_binary_stream
    ):
        session, store = _run_with_store(small_binary_stream)
        replay = QueryEngine.from_result(session.finalize())
        live = QueryEngine(store)
        for t in range(40):
            assert replay.store.variance_at(t) == store.variance_at(t)
            assert replay.store.publication_id_at(
                t
            ) == store.publication_id_at(t)
        assert [e.as_dict() for e in live.topk(2, t=39)] == [
            e.as_dict() for e in replay.topk(2, t=39)
        ]
        assert (
            live.sliding(0, 39, "mean", item=1).as_dict()
            == replay.sliding(0, 39, "mean", item=1).as_dict()
        )

    def test_variance_track_publishes_and_carries(self, small_binary_stream):
        session, store = _run_with_store(small_binary_stream, mechanism="LSP")
        result = session.finalize()
        last = PRIOR_VARIANCE
        for t, record in enumerate(result.records):
            if record.strategy == "publish":
                assert store.variance_at(t) > 0
                last = store.variance_at(t)
            else:
                assert store.variance_at(t) == last

    def test_attach_store_guards(self, small_binary_stream):
        session = StreamSession(
            "LBU", small_binary_stream, epsilon=1.0, window=10, seed=0
        )
        session.attach_store()
        with pytest.raises(InvalidParameterError):
            session.attach_store()
        session.start()
        session.observe(0)
        late = StreamSession(
            "LBU", small_binary_stream, epsilon=1.0, window=10, seed=0
        )
        late.start()
        late.observe(0)
        with pytest.raises(InvalidParameterError):
            late.attach_store()

    def test_domain_mismatch_rejected(self, small_binary_stream):
        with pytest.raises(InvalidParameterError):
            StreamSession(
                "LBU",
                small_binary_stream,
                epsilon=1.0,
                window=10,
                store=ReleaseStore(5),
            )

    def test_trace_free_session_with_ring_is_bounded(self):
        stream = OnlineStream(n_users=300, domain_size=4)
        session = StreamSession(
            "LBD", stream, epsilon=1.0, window=8, seed=1, record_trace=False
        )
        store = session.attach_store(capacity=16)
        session.start()
        rng = np.random.default_rng(0)
        for t in range(100):
            stream.push(rng.integers(0, 4, size=300))
            session.observe(t)
        assert len(store) == 16
        assert store.oldest_t == 84
        assert store.evicted == 84
        engine = QueryEngine(store)
        assert len(engine.topk(2)) == 2
        # The session itself kept no trace.
        with pytest.raises(InvalidParameterError):
            session.finalize()


class TestGroupSoloBitIdentity:
    """Acceptance: query answers identical between group and solo paths."""

    @pytest.mark.parametrize("mechanism", sorted(available_mechanisms()))
    def test_all_mechanisms(self, mechanism, small_binary_stream):
        horizon = 40
        solo_session, solo_store = _run_with_store(
            small_binary_stream, mechanism=mechanism, seed=11, horizon=horizon
        )
        group = SessionGroup(small_binary_stream, horizon=horizon)
        group.add_session(mechanism, 1.0, 10, seed=11)
        group_store = group.attach_stores()[0]
        group.run()
        solo = QueryEngine(solo_store)
        grouped = QueryEngine(group_store)
        for t in (0, horizon // 2, horizon - 1):
            np.testing.assert_array_equal(
                group_store.release_at(t), solo_store.release_at(t)
            )
            assert [e.as_dict() for e in grouped.topk(2, t=t)] == [
                e.as_dict() for e in solo.topk(2, t=t)
            ]
        assert (
            grouped.sliding(0, horizon - 1, "sum", item=0).as_dict()
            == solo.sliding(0, horizon - 1, "sum", item=0).as_dict()
        )
        assert (
            grouped.range_count(0, 2, t=horizon - 1).as_dict()
            == solo.range_count(0, 2, t=horizon - 1).as_dict()
        )

    def test_attach_stores_respects_existing(self, small_binary_stream):
        group = SessionGroup(small_binary_stream, horizon=10)
        own = ReleaseStore(small_binary_stream.domain_size, capacity=4)
        group.add_session("LBU", 1.0, 5, seed=0, store=own)
        group.add_session("LBU", 1.0, 5, seed=1)
        stores = group.attach_stores(capacity=8)
        assert stores[0] is own
        assert stores[0].capacity == 4
        assert stores[1].capacity == 8


class TestFromResultGuards:
    def test_requires_trace_records(self, small_binary_stream):
        result = run_stream(
            "LBU", small_binary_stream, epsilon=1.0, window=10, seed=0
        )
        result.records = []  # simulate a trace-free artifact
        with pytest.raises(InvalidParameterError):
            QueryEngine.from_result(result)
