"""``sliding_vector`` edge cases: spans wider than history and spans
clipped by the eviction horizon of a bounded ring."""

import numpy as np
import pytest

from repro.exceptions import EvictedSpanError, InvalidParameterError
from repro.query import QueryEngine, ReleaseStore

D = 6
T = 30


def fill(store: ReleaseStore, upto: int = T) -> ReleaseStore:
    rng = np.random.default_rng(5)
    release = None
    variance = 0.01
    for t in range(upto):
        if t % 3 == 0:
            release = rng.random(D)
            release /= release.sum()
            variance = float(rng.uniform(0.004, 0.03))
            store.append(t, release, variance, "publish",
                         fresh_publication=True)
        else:
            store.append(t, release, variance, "approximate",
                         fresh_publication=False)
    return store


@pytest.fixture()
def full_engine():
    return QueryEngine(fill(ReleaseStore(D)))


@pytest.fixture()
def ring_engine():
    return QueryEngine(fill(ReleaseStore(D, capacity=8)))


def test_window_wider_than_history_raises(full_engine):
    # [0, T] reaches one past the last observed timestamp.
    with pytest.raises(InvalidParameterError, match="outside the observed"):
        full_engine.sliding_vector(0, T)
    with pytest.raises(InvalidParameterError, match="outside the observed"):
        full_engine.sliding_vector(-3, 5)


def test_window_wider_than_short_history():
    # Only 2 timestamps ingested; a "last 10 steps" window must fail
    # loudly, not silently zero-pad.
    engine = QueryEngine(fill(ReleaseStore(D), upto=2))
    with pytest.raises(InvalidParameterError):
        engine.sliding_vector(0, 9)
    est, err = engine.sliding_vector(0, 1)
    assert est.shape == (D,) and err.shape == (D,)


def test_inverted_span_raises(full_engine):
    with pytest.raises(InvalidParameterError, match="t0 <= t1"):
        full_engine.sliding_vector(9, 4)


def test_evicted_span_raises_with_oldest(ring_engine):
    store = ring_engine.store
    assert store.oldest_t == T - 8
    with pytest.raises(EvictedSpanError) as exc:
        ring_engine.sliding_vector(0, T - 1)
    assert exc.value.oldest == store.oldest_t
    # the advertised horizon is usable for clipping: the clipped span
    # answers fine.
    t0 = exc.value.oldest
    est, err = ring_engine.sliding_vector(t0, T - 1)
    assert est.shape == (D,)
    assert np.all(err >= 0.0)


def test_clipped_span_matches_full_history(full_engine, ring_engine):
    t0 = ring_engine.store.oldest_t
    for agg in ("sum", "mean", "max"):
        est_r, err_r = ring_engine.sliding_vector(t0, T - 1, agg)
        est_f, err_f = full_engine.sliding_vector(t0, T - 1, agg)
        assert np.array_equal(est_r, est_f)
        assert np.array_equal(err_r, err_f)


def test_single_timestamp_span(full_engine):
    t = 7
    for agg in ("sum", "mean", "max"):
        est, err = full_engine.sliding_vector(t, t, agg)
        assert np.array_equal(est, full_engine.store.release_at(t))
        assert np.allclose(
            err, np.sqrt(full_engine.store.variance_at(t))
        )


def test_capacity_one_ring():
    engine = QueryEngine(fill(ReleaseStore(D, capacity=1)))
    last = T - 1
    est, err = engine.sliding_vector(last, last)
    assert np.array_equal(est, engine.store.release_at(last))
    with pytest.raises(EvictedSpanError) as exc:
        engine.sliding_vector(last - 1, last)
    assert exc.value.oldest == last


def test_mean_is_sum_over_span(full_engine):
    t0, t1 = 4, 19
    span = t1 - t0 + 1
    sum_est, sum_err = full_engine.sliding_vector(t0, t1, "sum")
    mean_est, mean_err = full_engine.sliding_vector(t0, t1, "mean")
    assert np.array_equal(mean_est, sum_est / span)
    assert np.array_equal(mean_err, sum_err / span)


def test_sum_variance_uses_publication_groups(full_engine):
    # Re-releases are copies: each 3-step run contributes 3^2 * v, not
    # 3 * v.  Check the exact closed form over one aligned span.
    t0, t1 = 3, 8  # two full publication groups of 3
    _, err = full_engine.sliding_vector(t0, t1, "sum")
    v1 = full_engine.store.variance_at(3)
    v2 = full_engine.store.variance_at(6)
    assert np.allclose(err, np.sqrt(9 * v1 + 9 * v2))


def test_max_reports_argmax_cell_interval(full_engine):
    t0, t1 = 2, 13
    est, err = full_engine.sliding_vector(t0, t1, "max")
    block = full_engine.store.span_releases(t0, t1)
    assert np.array_equal(est, block.max(axis=0))
    arg = np.argmax(block, axis=0)
    want = np.sqrt(
        np.array(
            [full_engine.store.variance_at(t0 + int(a)) for a in arg]
        )
    )
    assert np.allclose(err, want)
