"""Standing queries: incremental per-chunk evaluation is bit-identical
to a full re-evaluation at every chunk boundary, at 1/2/4 shards."""

import numpy as np
import pytest

from repro.analysis.changepoint import cusum_detect
from repro.exceptions import InvalidParameterError
from repro.query import (
    Changepoint,
    Filter,
    Point,
    QueryPlanner,
    Range,
    Sliding,
    StandingRegistry,
    Threshold,
    TopK,
    format_expr,
    pin_t,
)
from repro.serving import ShardedSession

DOMAIN = 8
N_USERS = 48
T = 24
CHUNK = 4


def make_block(seed: int = 3) -> np.ndarray:
    """A (T, N_USERS) stream with a level shift halfway through."""
    rng = np.random.default_rng(seed)
    first = rng.integers(0, 3, size=(T // 2, N_USERS))
    second = rng.integers(3, DOMAIN, size=(T - T // 2, N_USERS))
    return np.vstack([first, second])


def make_session(shards: int, capacity=None) -> ShardedSession:
    return ShardedSession(
        "lbd",
        n_users=N_USERS,
        domain_size=DOMAIN,
        epsilon=1.0,
        window=6,
        num_shards=shards,
        oracle="grr",
        seed=7,
        capacity=capacity,
        retain=T,
    ).start()


def threshold_events_full(planner, sid, query, latest):
    """Full re-evaluation from t=0: the reference alert stream."""
    events = []
    for t in range(latest + 1):
        result = planner.evaluate(pin_t(query, t))
        if result.triggered:
            events.append(
                {
                    "event": "alert",
                    "id": sid,
                    "kind": "threshold",
                    "t": t,
                    "expr": format_expr(query),
                    "cmp": query.cmp,
                    "value": query.value,
                    "margin": result.margin,
                    **result.interval.as_dict(),
                }
            )
    return events


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_threshold_incremental_matches_full_rerun(shards):
    session = make_session(shards)
    planner = QueryPlanner(session.engine)
    registry = StandingRegistry(planner)
    queries = {
        "pt": Threshold(Point(0), ">", 0.1),
        "rng": Threshold(
            Filter(Range(0, DOMAIN), (0, 2, 4)), "<", 0.5, sigmas=1.0
        ),
    }
    for sid, query in queries.items():
        registry.register(sid, query)
    block = make_block()
    incremental = {sid: [] for sid in queries}
    for i in range(0, T, CHUNK):
        session.ingest_many(block[i:i + CHUNK])
        for standing, event in registry.poll():
            incremental[standing.sid].append(event)
        # bit-identical to re-running every timestamp from scratch,
        # at every chunk boundary
        latest = session.merged.latest_t
        for sid, query in queries.items():
            assert incremental[sid] == threshold_events_full(
                planner, sid, query, latest
            )
    assert any(incremental[sid] for sid in queries), (
        "test stream never alerted; thresholds are miscalibrated"
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_changepoint_incremental_matches_full_rerun(shards):
    session = make_session(shards)
    planner = QueryPlanner(session.engine)
    registry = StandingRegistry(planner)
    query = Changepoint(5, drift=0.0, threshold=0.05)
    registry.register("cp", query)
    block = make_block()
    alert_ts = []
    for i in range(0, T, CHUNK):
        session.ingest_many(block[i:i + CHUNK])
        alert_ts.extend(e["t"] for _, e in registry.poll())
        # full re-run: the batch detector over [t0, latest]
        store = session.merged
        series = store.span_releases(0, store.latest_t)[:, 5]
        assert alert_ts == cusum_detect(series, 0.0, 0.05)
    assert alert_ts, "level shift in the stream never alarmed"


def test_changepoint_alert_event_shape():
    session = make_session(1)
    registry = StandingRegistry(QueryPlanner(session.engine))
    registry.register("cp", Changepoint(5, drift=0.0, threshold=0.01))
    session.ingest_many(make_block())
    events = [e for _, e in registry.poll()]
    assert events
    event = events[0]
    assert event["event"] == "alert"
    assert event["kind"] == "changepoint"
    assert event["id"] == "cp"
    assert event["item"] == 5
    assert event["t0"] == 0
    assert "expr" in event


def test_registration_anchors_at_watermark():
    session = make_session(1)
    registry = StandingRegistry(QueryPlanner(session.engine))
    block = make_block()
    session.ingest_many(block[:8])
    standing = registry.register("late", Threshold(Point(0), ">", -1e6))
    assert standing.next_t == 8  # past alerts are not replayed
    assert registry.poll() == []
    session.ingest_many(block[8:12])
    events = [e for _, e in registry.poll()]
    assert [e["t"] for e in events] == [8, 9, 10, 11]


def test_explicit_t0_replays_retained_history():
    session = make_session(1)
    registry = StandingRegistry(QueryPlanner(session.engine))
    block = make_block()
    session.ingest_many(block[:12])
    registry.register(
        "cp", Changepoint(5, drift=0.0, threshold=0.05, t0=0)
    )
    ts = [e["t"] for _, e in registry.poll()]
    store = session.merged
    series = store.span_releases(0, store.latest_t)[:, 5]
    assert ts == cusum_detect(series, 0.0, 0.05)


def test_eviction_skips_and_counts():
    session = make_session(1, capacity=CHUNK)
    registry = StandingRegistry(QueryPlanner(session.engine))
    standing = registry.register("pt", Threshold(Point(0), ">", -1e6))
    block = make_block()
    # two chunks between polls: the ring only retains the second
    session.ingest_many(block[:CHUNK])
    session.ingest_many(block[CHUNK:2 * CHUNK])
    events = [e for _, e in registry.poll()]
    assert [e["t"] for e in events] == [CHUNK, CHUNK + 1, CHUNK + 2,
                                        CHUNK + 3]
    assert standing.skipped == CHUNK
    assert standing.describe()["skipped"] == CHUNK


def test_registry_bookkeeping():
    session = make_session(1)
    registry = StandingRegistry(QueryPlanner(session.engine))
    registry.register("a", Threshold(Point(0), ">", 0.5))
    with pytest.raises(InvalidParameterError, match="already registered"):
        registry.register("a", Threshold(Point(1), ">", 0.5))
    registry.register("b", Changepoint(0, drift=0.0, threshold=0.1))
    assert len(registry) == 2
    assert [d["id"] for d in registry.describe()] == ["a", "b"]
    assert registry.unregister("a") is True
    assert registry.unregister("a") is False
    assert len(registry) == 1


@pytest.mark.parametrize(
    "query",
    [
        Threshold(Sliding(0, 0, 5), ">", 0.5),  # fixed window cannot stand
        Threshold(Point(0, t=3), ">", 0.5),     # t already pinned
        Changepoint(0, drift=0.0, threshold=0.1, t1=9),  # closed span
        TopK(3),                                 # not an alert predicate
        Point(0),
    ],
)
def test_non_standing_queries_rejected(query):
    session = make_session(1)
    registry = StandingRegistry(QueryPlanner(session.engine))
    with pytest.raises(InvalidParameterError):
        registry.register("bad", query)


def test_bad_sid_rejected():
    session = make_session(1)
    registry = StandingRegistry(QueryPlanner(session.engine))
    for sid in ("", 7, None):
        with pytest.raises(InvalidParameterError):
            registry.register(sid, Threshold(Point(0), ">", 0.5))
