"""ReleaseStore: ring semantics, prefix sums, publication grouping."""

import numpy as np
import pytest

from repro.exceptions import EvictedSpanError, InvalidParameterError
from repro.query import ReleaseStore


def _fill(store, rows, variances=None, strategies=None):
    for t, row in enumerate(rows):
        var = 0.5 if variances is None else variances[t]
        strat = "publish" if strategies is None else strategies[t]
        store.append(t, row, var, strat)


class TestAppend:
    def test_in_order_only(self):
        store = ReleaseStore(3)
        store.append(0, np.zeros(3), 0.1, "publish")
        with pytest.raises(InvalidParameterError):
            store.append(2, np.zeros(3), 0.1, "publish")
        with pytest.raises(InvalidParameterError):
            store.append(0, np.zeros(3), 0.1, "publish")

    def test_shape_checked(self):
        store = ReleaseStore(3)
        with pytest.raises(InvalidParameterError):
            store.append(0, np.zeros(4), 0.1, "publish")

    def test_bad_construction(self):
        with pytest.raises(InvalidParameterError):
            ReleaseStore(1)
        with pytest.raises(InvalidParameterError):
            ReleaseStore(3, capacity=0)

    def test_store_copies_its_rows(self):
        store = ReleaseStore(2)
        row = np.array([0.25, 0.75])
        store.append(0, row, 0.1, "publish")
        row[0] = 99.0
        assert store.release_at(0)[0] == 0.25


class TestRing:
    def test_eviction_bounds_memory(self):
        store = ReleaseStore(4, capacity=8)
        _fill(store, [np.full(4, float(t)) for t in range(50)])
        assert len(store) == 8
        assert store.oldest_t == 42
        assert store.latest_t == 49
        assert store.evicted == 42

    def test_evicted_access_raises_with_oldest(self):
        store = ReleaseStore(4, capacity=4)
        _fill(store, [np.full(4, float(t)) for t in range(10)])
        with pytest.raises(EvictedSpanError) as info:
            store.release_at(2)
        assert info.value.oldest == 6

    def test_unbounded_retains_everything(self):
        store = ReleaseStore(4)
        _fill(store, [np.full(4, float(t)) for t in range(50)])
        assert len(store) == 50
        assert store.oldest_t == 0
        assert store.evicted == 0

    def test_future_access_is_range_error_not_eviction(self):
        store = ReleaseStore(4, capacity=4)
        _fill(store, [np.zeros(4) for _ in range(3)])
        with pytest.raises(InvalidParameterError):
            store.release_at(3)


class TestPrefixSums:
    def test_window_sum_matches_naive(self, rng):
        rows = rng.random((30, 5))
        store = ReleaseStore(5)
        _fill(store, rows)
        for t0, t1 in [(0, 29), (0, 0), (7, 7), (3, 17), (29, 29)]:
            np.testing.assert_allclose(
                store.window_sum(t0, t1), rows[t0 : t1 + 1].sum(axis=0)
            )

    def test_window_sum_within_ring_after_eviction(self, rng):
        rows = rng.random((40, 3))
        store = ReleaseStore(3, capacity=10)
        _fill(store, rows)
        np.testing.assert_allclose(
            store.window_sum(32, 39), rows[32:40].sum(axis=0)
        )

    def test_span_crossing_eviction_horizon_raises(self, rng):
        rows = rng.random((40, 3))
        store = ReleaseStore(3, capacity=10)
        _fill(store, rows)
        # t0 evicted, t1 retained: the classic "window longer than ring".
        with pytest.raises(EvictedSpanError):
            store.window_sum(20, 39)
        with pytest.raises(EvictedSpanError):
            store.span_releases(29, 35)

    def test_reversed_span_rejected(self):
        store = ReleaseStore(3)
        _fill(store, [np.zeros(3) for _ in range(5)])
        with pytest.raises(InvalidParameterError):
            store.window_sum(4, 2)

    def test_long_span_groups_match_per_slot_metadata(self, rng):
        """The O(span) group scan agrees with per-timestamp reads."""
        strategies = rng.choice(["publish", "approximate"], size=200).tolist()
        strategies[0] = "publish"
        variances = rng.random(200)
        store = ReleaseStore(3)
        _fill(store, [np.zeros(3)] * 200, variances, strategies)
        groups = store.span_publication_groups(0, 199)
        assert sum(count for _, count, _ in groups) == 200
        flat = [
            (pid, var) for pid, count, var in groups for _ in range(count)
        ]
        for t in (0, 57, 199):
            assert flat[t] == (
                store.publication_id_at(t),
                store.variance_at(t),
            )


class TestPublicationGroups:
    def test_groups_follow_publish_runs(self):
        strategies = [
            "publish", "approximate", "approximate",
            "publish", "nullified", "publish",
        ]
        variances = [0.4, 0.4, 0.4, 0.2, 0.2, 0.1]
        store = ReleaseStore(3)
        _fill(store, [np.zeros(3)] * 6, variances, strategies)
        groups = store.span_publication_groups(0, 5)
        assert groups == [(1, 3, 0.4), (2, 2, 0.2), (3, 1, 0.1)]
        # Sub-span splits the first group but keeps its variance.
        assert store.span_publication_groups(1, 4) == [(1, 2, 0.4), (2, 2, 0.2)]

    def test_prior_before_first_publication_is_group_zero(self):
        store = ReleaseStore(3)
        store.append(0, np.zeros(3), 0.0, "approximate")
        store.append(1, np.zeros(3), 0.0, "nullified")
        store.append(2, np.ones(3), 0.3, "publish")
        assert store.publication_id_at(0) == 0
        assert store.publication_id_at(1) == 0
        assert store.publication_id_at(2) == 1
        assert store.publication_count == 1
