"""Tests for the THRESH related-work baseline."""

import numpy as np
import pytest

from repro.engine import STRATEGY_PUBLISH, run_stream
from repro.exceptions import InvalidParameterError
from repro.mechanisms import get_mechanism
from repro.related import THRESH
from repro.streams import BinaryStream, make_step


class TestTHRESHBasics:
    def test_registered(self):
        assert get_mechanism("thresh").name == "THRESH"

    def test_runs_with_privacy(self, small_binary_stream):
        result = run_stream("THRESH", small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert result.max_window_spend <= 1.0 + 1e-9
        assert result.horizon == small_binary_stream.horizon

    def test_invalid_threshold(self):
        with pytest.raises(InvalidParameterError):
            THRESH(vote_threshold_sigmas=0.0)

    def test_needs_enough_users(self):
        tiny = BinaryStream(np.full(5, 0.5), n_users=5, seed=0)
        with pytest.raises(InvalidParameterError):
            run_stream("THRESH", tiny, epsilon=1.0, window=5, seed=0)

    def test_window_report_bound(self, small_binary_stream):
        w = 5
        result = run_stream("THRESH", small_binary_stream, epsilon=1.0, window=w, seed=0)
        reports = [r.reports for r in result.records]
        for start in range(len(reports) - w + 1):
            assert sum(reports[start : start + w]) <= small_binary_stream.n_users


class TestTHRESHBehaviour:
    def test_updates_on_changes(self):
        stream = make_step(
            n_users=20_000, horizon=60, low=0.05, high=0.4, period=20, seed=4
        )
        result = run_stream("THRESH", stream, epsilon=1.0, window=5, seed=1)
        publish_ts = {r.t for r in result.records if r.strategy == STRATEGY_PUBLISH}
        for change in (20, 40):
            assert any(abs(t - change) <= 3 for t in publish_ts)

    def test_mostly_quiet_on_constant(self, constant_stream):
        result = run_stream("THRESH", constant_stream, epsilon=1.0, window=5, seed=1)
        assert result.publication_rate < 0.5

    def test_higher_threshold_fewer_updates(self, small_binary_stream):
        eager = run_stream(
            THRESH(vote_threshold_sigmas=1.0),
            small_binary_stream,
            epsilon=1.0,
            window=5,
            seed=3,
        )
        conservative = run_stream(
            THRESH(vote_threshold_sigmas=4.0),
            small_binary_stream,
            epsilon=1.0,
            window=5,
            seed=3,
        )
        assert conservative.publication_count <= eager.publication_count

    def test_lpa_beats_thresh_on_smooth_streams(self):
        """Error-aware strategy determination (dis vs err) plus absorption
        beats THRESH's fixed vote threshold on the paper's smooth stream
        families.  (On abrupt square waves THRESH's frequent small updates
        can win — see the mechanism docstring — which is why this check
        uses the realistic LNS/Sin dynamics.)"""
        from repro.analysis import mean_squared_error
        from repro.streams import make_lns, make_sin

        for stream in (
            make_lns(n_users=20_000, horizon=120, seed=21),
            make_sin(n_users=20_000, horizon=120, seed=21),
        ):
            thresh_mse, lpa_mse = [], []
            for seed in range(5):
                a = run_stream("THRESH", stream, epsilon=1.0, window=20, seed=seed)
                b = run_stream("LPA", stream, epsilon=1.0, window=20, seed=seed)
                thresh_mse.append(
                    mean_squared_error(a.releases, a.true_frequencies)
                )
                lpa_mse.append(
                    mean_squared_error(b.releases, b.true_frequencies)
                )
            assert np.mean(lpa_mse) < np.mean(thresh_mse)
