"""Shared helpers for the sharded-serving conformance suite.

The subprocess tests here talk to a real ``repro serve --shards K``
process over its TCP socket, exactly as an operator's client would:
spawn the CLI, parse the one-line JSON hello for the ephemeral port,
then exchange line-delimited JSON.  The serial
:class:`repro.serving.ShardedSession` built by :func:`serial_reference`
is the semantics oracle every server answer is diffed against.

This module is imported by several test files in a directory without an
``__init__.py``; keep its basename globally unique across ``tests/``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Default tier geometry shared by the conformance tests: small enough
#: to keep subprocess tests fast, large enough that every shard of an
#: 8-way split owns users.
DEFAULTS = {
    "method": "LBD",
    "oracle": "grr",
    "domain": 8,
    "epsilon": 1.0,
    "window": 6,
    "seed": 7,
    "chunk": 4,
    "postprocess": "none",
}


def serve_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def sharded_cmd(*, shards, n_users, extra=(), **overrides):
    cfg = {**DEFAULTS, **overrides}
    return [
        sys.executable, "-m", "repro", "serve",
        "--shards", str(shards), "--n-users", str(n_users),
        "--method", cfg["method"], "--oracle", cfg["oracle"],
        "--domain-size", str(cfg["domain"]),
        "--epsilon", str(cfg["epsilon"]),
        "--window", str(cfg["window"]), "--seed", str(cfg["seed"]),
        "--postprocess", cfg["postprocess"],
        "--chunk", str(cfg["chunk"]), "--capacity", "0",
        *extra,
    ]


def feed_block(steps, n_users, domain, seed=3):
    """The canonical seeded stream: an ``(steps, n_users)`` value block."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, domain, size=(steps, n_users), dtype=np.int64)


def serial_reference(block, *, shards, capacity=None, **overrides):
    """Replay ``block`` through the in-process ShardedSession oracle."""
    from repro.serving import ShardedSession

    cfg = {**DEFAULTS, **overrides}
    chunk = cfg["chunk"]
    session = ShardedSession(
        cfg["method"],
        n_users=block.shape[1],
        domain_size=cfg["domain"],
        epsilon=cfg["epsilon"],
        window=cfg["window"],
        num_shards=shards,
        oracle=cfg["oracle"],
        seed=cfg["seed"],
        postprocess=cfg["postprocess"],
        capacity=capacity,
        retain=max(4, chunk),
    ).start()
    for i in range(0, block.shape[0], chunk):
        session.ingest_many(block[i : i + chunk])
    return session


class ServerClient:
    """One line-delimited JSON connection to the sharded server."""

    def __init__(self, port, timeout=120):
        self.sock = socket.create_connection(
            ("127.0.0.1", port), timeout=timeout
        )
        self.rfile = self.sock.makefile("r", encoding="utf-8")
        self.wfile = self.sock.makefile("w", encoding="utf-8")

    def send(self, request):
        self.wfile.write(json.dumps(request) + "\n")
        self.wfile.flush()

    def send_raw(self, line):
        self.wfile.write(line + "\n")
        self.wfile.flush()

    def recv(self):
        line = self.rfile.readline()
        assert line, "server closed the connection mid-conversation"
        return json.loads(line)

    def ask(self, request):
        self.send(request)
        return self.recv()

    def close(self):
        for stream in (self.rfile, self.wfile):
            try:
                stream.close()
            except OSError:
                pass
        self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ShardServerProc:
    """A live ``repro serve --shards K`` subprocess, hello already read."""

    def __init__(self, cmd):
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=serve_env(),
        )
        line = self.proc.stdout.readline()
        if not line:
            stderr = self.proc.stderr.read()
            self.proc.wait(timeout=30)
            raise AssertionError(
                f"server exited (rc={self.proc.returncode}) before its "
                f"hello line:\n{stderr}"
            )
        self.hello = json.loads(line)
        assert self.hello["event"] == "listening", self.hello
        self.port = int(self.hello["port"])

    def client(self, timeout=120):
        return ServerClient(self.port, timeout=timeout)

    def shutdown(self, timeout=60):
        """Graceful shutdown; returns (reply, returncode)."""
        with self.client() as client:
            reply = client.ask({"op": "shutdown"})
        self.proc.stdout.close()
        self.proc.stderr.close()
        return reply, self.proc.wait(timeout=timeout)

    def kill(self):
        """SIGKILL — the crash-injection path."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.stdout.close()
        self.proc.stderr.close()
        self.proc.wait(timeout=30)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if self.proc.poll() is None:
            self.kill()


def assert_same_answer(got, want, *, ignore=("as_of",)):
    """Exact equality of two answer dicts, modulo server-only keys."""
    got = {k: v for k, v in got.items() if k not in ignore}
    want = {k: v for k, v in want.items() if k not in ignore}
    assert got == want, f"\nserver: {got}\nserial: {want}"
