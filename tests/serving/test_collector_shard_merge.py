"""Satellite: shard-merged collection equals whole-population collection.

Seeded property-style sweeps (plain ``numpy`` RNG loops — no hypothesis
dependency): for every one of the five frequency oracles, across random
domain sizes, population sizes, budgets and shard counts, aggregating
each shard's reports separately and merging through
:meth:`repro.engine.collector.Collector.merge` must reproduce the
single-process aggregation of the full report set **bit for bit** —
frequencies, variance, report count and the support sufficient
statistic.  This exactness is the foundation the whole serving tier's
merge contract rests on.
"""

import numpy as np
import pytest

from repro.engine.collector import Collector
from repro.exceptions import InvalidParameterError
from repro.freq_oracles import FOEstimate, get_oracle

ORACLES = ["grr", "oue", "sue", "olh", "hr"]
SHARD_COUNTS = [2, 3, 4, 8]
TRIALS = 8


def _random_round(rng):
    """One random collection round's geometry."""
    d = int(rng.integers(2, 40))
    n = int(rng.integers(60, 400))
    epsilon = float(rng.choice([0.5, 1.0, 2.0]))
    return d, n, epsilon


def _shard_indices(n, k, rng):
    """A random disjoint covering partition of ``range(n)`` into ``k``
    non-empty groups — shards are arbitrary user subsets, not slices."""
    perm = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), size=k - 1, replace=False))
    return np.split(perm, cuts)


@pytest.mark.parametrize("oracle_name", ORACLES)
def test_shard_merge_is_bit_exact(oracle_name):
    oracle = get_oracle(oracle_name)
    rng = np.random.default_rng(abs(hash_seed(oracle_name)))
    for trial in range(TRIALS):
        d, n, epsilon = _random_round(rng)
        k = SHARD_COUNTS[trial % len(SHARD_COUNTS)]
        values = rng.integers(0, d, size=n)
        reports = oracle.perturb(values, d, epsilon, rng)

        whole = oracle.aggregate(reports, d, epsilon)
        parts = [
            oracle.aggregate(reports[idx], d, epsilon)
            for idx in _shard_indices(n, k, rng)
        ]
        merged = Collector.merge(parts, oracle_name)

        context = f"{oracle_name} trial={trial} d={d} n={n} k={k}"
        assert merged.n_reports == whole.n_reports == n, context
        assert merged.epsilon == whole.epsilon, context
        assert np.array_equal(
            merged.frequencies, whole.frequencies
        ), context
        assert merged.variance == whole.variance, context
        assert whole.supports is not None, context
        assert np.array_equal(merged.supports, whole.supports), context


def hash_seed(name):
    """A stable per-oracle seed (PYTHONHASHSEED-independent)."""
    return sum((i + 1) * ord(c) for i, c in enumerate(name))


@pytest.mark.parametrize("oracle_name", ORACLES)
def test_merge_of_one_estimate_is_identity(oracle_name):
    oracle = get_oracle(oracle_name)
    rng = np.random.default_rng(17)
    reports = oracle.perturb(rng.integers(0, 6, size=100), 6, 1.0, rng)
    whole = oracle.aggregate(reports, 6, 1.0)
    merged = Collector.merge([whole], oracle_name)
    assert np.array_equal(merged.frequencies, whole.frequencies)
    assert merged.variance == whole.variance
    assert merged.n_reports == whole.n_reports


def test_supportless_estimates_fall_back_to_weighted_merge():
    """Hand-built estimates (no sufficient statistic) still merge via
    the count-weighted frequency average."""
    a = FOEstimate(
        frequencies=np.array([0.5, 0.5]),
        n_reports=100,
        epsilon=1.0,
        variance=0.01,
    )
    b = FOEstimate(
        frequencies=np.array([0.9, 0.1]),
        n_reports=300,
        epsilon=1.0,
        variance=0.02,
    )
    merged = Collector.merge([a, b], "grr")
    np.testing.assert_allclose(
        merged.frequencies, (100 * a.frequencies + 300 * b.frequencies) / 400
    )
    np.testing.assert_allclose(
        merged.variance, (100 / 400) ** 2 * 0.01 + (300 / 400) ** 2 * 0.02
    )
    assert merged.n_reports == 400


def test_merge_rejects_mismatched_rounds():
    base = dict(frequencies=np.zeros(3), n_reports=10, variance=0.1)
    with pytest.raises(InvalidParameterError, match="zero estimates"):
        Collector.merge([], "grr")
    with pytest.raises(InvalidParameterError, match="mix budgets"):
        Collector.merge(
            [
                FOEstimate(epsilon=1.0, **base),
                FOEstimate(epsilon=2.0, **base),
            ],
            "grr",
        )
    with pytest.raises(InvalidParameterError, match="mix domain sizes"):
        Collector.merge(
            [
                FOEstimate(epsilon=1.0, **base),
                FOEstimate(
                    frequencies=np.zeros(4),
                    n_reports=10,
                    epsilon=1.0,
                    variance=0.1,
                ),
            ],
            "grr",
        )
