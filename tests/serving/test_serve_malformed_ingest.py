"""Satellite regression: malformed ingest values must not kill serve.

Python's ``json`` happily parses ``Infinity`` into ``float("inf")``,
and ``int(float("inf"))`` raises ``OverflowError`` — an exception class
the legacy ``repro serve`` loop did not catch, so one malformed record
could take down a server holding buffered (``--chunk > 1``) timestamps.
The server must instead emit a structured JSON error line and keep
serving the rest of the feed.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

N_USERS = 30
DOMAIN = 4


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _serve_cmd(chunk=3):
    return [
        sys.executable, "-m", "repro", "serve",
        "--method", "LBD", "--oracle", "grr",
        "--domain-size", str(DOMAIN), "--epsilon", "1", "--window", "4",
        "--seed", "11", "--chunk", str(chunk), "--capacity", "0",
    ]


def _ingest_lines(n, seed=5):
    rng = np.random.default_rng(seed)
    return [
        json.dumps(
            {
                "op": "ingest",
                "values": rng.integers(0, DOMAIN, N_USERS).tolist(),
            }
        )
        for _ in range(n)
    ]


def _infinity_line():
    # json.dumps would also emit bare Infinity, but build it explicitly:
    # the point is a record whose values parse to non-finite floats.
    return (
        '{"op": "ingest", "values": ['
        + ", ".join(["Infinity"] * N_USERS)
        + "]}"
    )


def test_infinity_values_emit_an_error_line_not_a_crash():
    feed = _ingest_lines(6)
    feed.insert(2, _infinity_line())
    feed.insert(5, '{"op": "ingest", "values": [-Infinity, NaN]}')
    feed.append(json.dumps({"op": "point", "item": 0}))
    proc = subprocess.run(
        _serve_cmd(),
        input="\n".join(feed) + "\n",
        capture_output=True,
        text=True,
        env=_env(),
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = [json.loads(line) for line in proc.stdout.splitlines()]
    errors = [obj for obj in out if "error" in obj]
    assert len(errors) == 2
    assert any("OverflowError" in obj["error"] for obj in errors)
    # Every well-formed ingest was acked with a consecutive timestamp —
    # the buffered chunk survived both malformed records.
    acked = [obj["t"] for obj in out if obj.get("op") == "ingest"]
    assert acked == list(range(6))
    answer = [obj for obj in out if obj.get("op") == "point"]
    assert len(answer) == 1 and "estimate" in answer[0]


def test_chunk_one_still_reports_instead_of_dying():
    """The overflow predates batching: cover the unbuffered path too."""
    feed = [_infinity_line(), *_ingest_lines(2, seed=9)]
    proc = subprocess.run(
        _serve_cmd(chunk=1),
        input="\n".join(feed) + "\n",
        capture_output=True,
        text=True,
        env=_env(),
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = [json.loads(line) for line in proc.stdout.splitlines()]
    assert sum("error" in obj for obj in out) == 1
    assert [obj["t"] for obj in out if obj.get("op") == "ingest"] == [0, 1]
