"""ShardRouter: deterministic hash partition of the user population."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.serving import ShardRouter, shard_seed
from repro.serving.router import splitmix64


class TestPartition:
    def test_members_partition_the_population(self):
        """Shard member sets are disjoint and cover range(n_users)."""
        for n_users, shards in [(40, 1), (40, 3), (257, 8), (1000, 16)]:
            router = ShardRouter(n_users, shards)
            merged = np.concatenate(router.members)
            assert merged.size == n_users
            assert np.array_equal(np.sort(merged), np.arange(n_users))

    def test_assignment_is_a_pure_function(self):
        """Two independently built routers agree user for user."""
        a = ShardRouter(513, 7)
        b = ShardRouter(513, 7)
        assert np.array_equal(a.assignment, b.assignment)
        for user in (0, 1, 255, 512):
            assert a.shard_of(user) == b.shard_of(user)
            assert a.shard_of(user) == int(a.assignment[user])

    def test_splitmix64_reference_values(self):
        """The hash is pinned: changing it would silently reshard every
        durable deployment, so lock the finalizer to known outputs."""
        out = splitmix64(np.array([0, 1, 2], dtype=np.uint64))
        assert out.dtype == np.uint64
        # SplitMix64 outputs for states 0..2 (0 and 1 match the
        # published test vectors; 2 pins this implementation).
        assert list(out) == [
            16294208416658607535,
            10451216379200822465,
            10905525725756348110,
        ]

    def test_single_shard_is_the_identity_layout(self):
        router = ShardRouter(17, 1)
        assert np.array_equal(router.members[0], np.arange(17))
        assert router.weights[0] == 1.0

    def test_counts_and_weights_are_consistent(self):
        router = ShardRouter(400, 4)
        assert int(router.counts.sum()) == 400
        np.testing.assert_allclose(router.weights.sum(), 1.0)
        assert np.array_equal(
            router.counts, [m.size for m in router.members]
        )


class TestValidation:
    def test_empty_shard_is_rejected(self):
        """More shards than users guarantees an empty shard — refused,
        because a shard session needs a non-empty population."""
        with pytest.raises(InvalidParameterError, match="own no users"):
            ShardRouter(1, 2)

    @pytest.mark.parametrize("n_users,shards", [(0, 1), (-3, 2), (5, 0)])
    def test_bad_geometry_is_rejected(self, n_users, shards):
        with pytest.raises(InvalidParameterError):
            ShardRouter(n_users, shards)

    def test_shard_of_bounds(self):
        router = ShardRouter(10, 2)
        with pytest.raises(InvalidParameterError):
            router.shard_of(10)
        with pytest.raises(InvalidParameterError):
            router.shard_of(-1)


class TestSplit:
    def test_split_routes_each_users_value(self):
        router = ShardRouter(64, 4)
        values = np.arange(64) % 5
        parts = router.split(values)
        for s, members in enumerate(router.members):
            assert np.array_equal(parts[s], values[members])

    def test_split_block_matches_columnwise_split(self):
        router = ShardRouter(64, 4)
        rng = np.random.default_rng(9)
        block = rng.integers(0, 6, size=(5, 64))
        parts = router.split_block(block)
        for s in range(4):
            assert parts[s].shape == (5, int(router.counts[s]))
            for i in range(5):
                assert np.array_equal(parts[s][i], router.split(block[i])[s])

    def test_split_rejects_wrong_shape(self):
        router = ShardRouter(8, 2)
        with pytest.raises(InvalidParameterError):
            router.split(np.zeros(7, dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            router.split_block(np.zeros((3, 9), dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            router.split_block(np.zeros(8, dtype=np.int64))


class TestShardSeed:
    def test_single_shard_passes_the_master_seed_through(self):
        """K=1 must reuse the master seed unchanged — that is what makes
        a one-shard tier bit-identical to the solo server."""
        assert shard_seed(1234, 0, 1) == 1234
        assert shard_seed(None, 0, 1) is None

    def test_multi_shard_seeds_are_distinct_and_deterministic(self):
        seeds = [shard_seed(1234, s, 4) for s in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [shard_seed(1234, s, 4) for s in range(4)]
        # Keyed by num_shards too: a reshard cannot alias old streams.
        assert shard_seed(1234, 0, 4) != shard_seed(1234, 0, 2)
