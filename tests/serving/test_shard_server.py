"""Black-box conformance of ``repro serve --shards K`` over its socket.

Every test talks to a real server subprocess (spawned shard workers,
real asyncio front) and diffs its answers against the in-process
:class:`repro.serving.ShardedSession` reference — the tier's documented
contract is that no amount of batching, socket framing or process
parallelism may change a single merged float.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from shard_serve_util import (
    DEFAULTS,
    ShardServerProc,
    assert_same_answer,
    feed_block,
    serial_reference,
    sharded_cmd,
)

N_USERS = 64
STEPS = 12


class TestSingleClientConformance:
    def test_answers_match_the_serial_reference_bit_for_bit(self):
        """One client, batched ingest: acks and every query class equal
        the serial ShardedSession over the same feed."""
        block = feed_block(STEPS, N_USERS, DEFAULTS["domain"], seed=51)
        serial = serial_reference(block, shards=2)
        with ShardServerProc(
            sharded_cmd(shards=2, n_users=N_USERS)
        ) as server:
            assert server.hello["shards"] == 2
            assert server.hello["watermark"] == 0
            with server.client() as client:
                # Send a full chunk of 4 before reading acks so the
                # server actually exercises batched observe_many.
                acks = []
                for i in range(0, STEPS, 4):
                    for t in range(i, i + 4):
                        client.send(
                            {"op": "ingest", "values": block[t].tolist()}
                        )
                    acks.extend(client.recv() for _ in range(4))
                for t, ack in enumerate(acks):
                    assert ack["t"] == t
                    assert ack["strategy"] == serial.merged.strategy_at(t)

                engine = serial.engine
                got = client.ask({"op": "point", "item": 3})
                assert got["as_of"] == STEPS - 1
                assert_same_answer(
                    got,
                    {
                        "op": "point",
                        "item": 3,
                        **engine.point(3).as_dict(),
                    },
                )
                assert_same_answer(
                    client.ask({"op": "point", "item": 0, "t": 5}),
                    {
                        "op": "point",
                        "item": 0,
                        **engine.point(0, t=5).as_dict(),
                    },
                )
                assert_same_answer(
                    client.ask({"op": "topk", "k": 3}),
                    {
                        "op": "topk",
                        "items": [e.as_dict() for e in engine.topk(3)],
                    },
                )
                assert_same_answer(
                    client.ask({"op": "range", "lo": 1, "hi": 4}),
                    {
                        "op": "range",
                        "lo": 1,
                        "hi": 4,
                        **engine.range_count(1, 4).as_dict(),
                    },
                )
                assert_same_answer(
                    client.ask(
                        {
                            "op": "sliding",
                            "t0": 2,
                            "t1": STEPS - 1,
                            "agg": "mean",
                            "item": 2,
                        }
                    ),
                    {
                        "op": "sliding",
                        "item": 2,
                        **engine.sliding(
                            2, STEPS - 1, "mean", item=2
                        ).as_dict(),
                    },
                )
                summary = client.ask({"op": "summary"})
                want = serial.summary()
                for key in (
                    "mechanism",
                    "oracle",
                    "num_shards",
                    "shard_users",
                    "steps",
                    "publications",
                    "total_reports",
                    "cfpu",
                    "max_window_spend",
                ):
                    assert summary[key] == want[key], key
            reply, rc = server.shutdown()
            assert reply == {"op": "shutdown", "watermark": STEPS}
            assert rc == 0

    def test_b64_ingest_equals_list_ingest(self):
        """The packed wire form decodes to the same snapshot, so both
        encodings of the same feed produce identical acks."""
        import base64

        block = feed_block(6, N_USERS, DEFAULTS["domain"], seed=53)
        serial = serial_reference(block, shards=2, chunk=2)
        with ShardServerProc(
            sharded_cmd(shards=2, n_users=N_USERS, chunk=2)
        ) as server:
            with server.client() as client:
                for t in range(6):
                    if t % 2:
                        request = {
                            "op": "ingest",
                            "b64": base64.b64encode(
                                block[t].astype(np.uint8).tobytes()
                            ).decode("ascii"),
                            "dtype": "u1",
                        }
                    else:
                        request = {
                            "op": "ingest",
                            "values": block[t].tolist(),
                        }
                    ack = client.ask(request)
                    assert ack["t"] == t
                    assert (
                        ack["strategy"] == serial.merged.strategy_at(t)
                    )
                assert_same_answer(
                    client.ask({"op": "point", "item": 1}),
                    {
                        "op": "point",
                        "item": 1,
                        **serial.engine.point(1).as_dict(),
                    },
                )
            server.shutdown()


class TestErrorHandling:
    def test_bad_requests_answer_errors_without_dying(self):
        """Malformed lines — broken JSON, wrong population size,
        out-of-domain values, JSON Infinity, unknown ops, checkpoint
        without a state dir — each earns a structured error line and the
        server keeps serving."""
        block = feed_block(3, N_USERS, DEFAULTS["domain"], seed=57)
        with ShardServerProc(
            sharded_cmd(shards=2, n_users=N_USERS, chunk=1)
        ) as server:
            with server.client() as client:
                bad_lines = [
                    "{not json}",
                    '"just a string"',
                    json.dumps({"op": "ingest", "values": [1, 2, 3]}),
                    json.dumps(
                        {"op": "ingest", "values": [99] * N_USERS}
                    ),
                    '{"op": "ingest", "values": ['
                    + ", ".join(["Infinity"] * N_USERS)
                    + "]}",
                    json.dumps({"op": "mystery"}),
                    json.dumps({"op": "checkpoint"}),
                    json.dumps({"op": "ingest", "b64": "!!", "dtype": "u1"}),
                    json.dumps(
                        {"op": "ingest", "b64": "AA==", "dtype": "f8"}
                    ),
                ]
                for line in bad_lines:
                    client.send_raw(line)
                    reply = client.recv()
                    assert set(reply) == {"error"}, (line, reply)
                # The tier is still healthy: ingest and query proceed.
                for t in range(3):
                    ack = client.ask(
                        {"op": "ingest", "values": block[t].tolist()}
                    )
                    assert ack["t"] == t
                answer = client.ask({"op": "point", "item": 0})
                assert answer["as_of"] == 2
            reply, rc = server.shutdown()
            assert reply["watermark"] == 3
            assert rc == 0


class TestConcurrentClients:
    def test_eight_interleaved_clients_see_one_serialized_order(self):
        """Satellite: 8 concurrent sessions interleave ingests and
        queries.  The server acks a single global order (each ingest a
        distinct timestamp, all timestamps covered); replaying that
        exact order through the serial reference must reproduce every
        acked strategy and every queried answer bit-for-bit."""
        clients = 8
        per_client = 4
        domain = DEFAULTS["domain"]
        with ShardServerProc(
            sharded_cmd(shards=4, n_users=N_USERS, chunk=3)
        ) as server:

            def run_client(c):
                rng = np.random.default_rng(1000 + c)
                records = []
                with server.client() as client:
                    for i in range(per_client):
                        values = rng.integers(
                            0, domain, size=N_USERS
                        ).tolist()
                        ack = client.ask(
                            {"op": "ingest", "values": values}
                        )
                        records.append(("ingest", values, ack))
                        item = int(rng.integers(domain))
                        answer = client.ask(
                            {"op": "point", "item": item}
                        )
                        records.append(("point", item, answer))
                    t1 = records[-2][2]["t"]  # this client's last ack
                    answer = client.ask(
                        {
                            "op": "sliding",
                            "t0": 0,
                            "t1": t1,
                            "agg": "sum",
                            "item": c % domain,
                        }
                    )
                    records.append(("sliding", (c % domain, t1), answer))
                return records

            with ThreadPoolExecutor(max_workers=clients) as pool:
                all_records = list(pool.map(run_client, range(clients)))
            reply, rc = server.shutdown()
            assert rc == 0

        total = clients * per_client
        assert reply["watermark"] == total

        # Reconstruct the server's global serialized order from the acks.
        by_t = {}
        for records in all_records:
            for kind, payload, ack in records:
                if kind == "ingest":
                    assert ack.get("error") is None, ack
                    by_t[ack["t"]] = (payload, ack["strategy"])
        assert sorted(by_t) == list(range(total)), (
            "acked timestamps must be distinct and cover the stream"
        )

        # Replay that order through the serial reference (chunking is
        # invariant, so row-at-a-time replay is exact).
        from repro.serving import ShardedSession

        serial = ShardedSession(
            DEFAULTS["method"],
            n_users=N_USERS,
            domain_size=domain,
            epsilon=DEFAULTS["epsilon"],
            window=DEFAULTS["window"],
            num_shards=4,
            oracle=DEFAULTS["oracle"],
            seed=DEFAULTS["seed"],
            capacity=None,
            retain=4,
        ).start()
        for t in range(total):
            values, strategy = by_t[t]
            ack = serial.ingest(np.asarray(values, dtype=np.int64))
            assert ack["strategy"] == strategy, t

        # Every query the server answered mid-stream must equal the
        # reference's answer over the prefix it was acked against.
        for records in all_records:
            for kind, payload, answer in records:
                if kind == "point":
                    as_of = answer["as_of"]
                    want = serial.engine.point(payload, t=as_of).as_dict()
                    assert_same_answer(
                        answer,
                        {"op": "point", "item": payload, **want},
                    )
                elif kind == "sliding":
                    item, t1 = payload
                    want = serial.engine.sliding(
                        0, t1, "sum", item=item
                    ).as_dict()
                    assert_same_answer(
                        answer,
                        {"op": "sliding", "item": item, **want},
                    )
