"""Durable sharded serving: crash, resume, reshard — end to end.

Real SIGKILLs against a real server: each shard keeps its own
write-ahead release log + checkpoints (the solo ``--state-dir``
machinery, one directory per shard) and the front coordinates a
``front.json`` that never runs ahead of any shard.  A killed tier must
resume to a consistent watermark and, replaying the same feed, produce
**exactly** the answers of a run that never crashed.
"""

import json
import subprocess

from shard_serve_util import (
    DEFAULTS,
    ShardServerProc,
    assert_same_answer,
    feed_block,
    serve_env,
    sharded_cmd,
)

N_USERS = 48
STEPS = 20

QUERIES = [
    {"op": "point", "item": 2},
    {"op": "point", "item": 5, "t": 9},
    {"op": "topk", "k": 4},
    {"op": "range", "lo": 0, "hi": 3},
    {"op": "sliding", "t0": 3, "t1": STEPS - 1, "agg": "sum", "item": 1},
]


def _durable_cmd(state_dir, *, shards=2, extra=()):
    return sharded_cmd(
        shards=shards,
        n_users=N_USERS,
        chunk=3,
        extra=(
            "--state-dir", str(state_dir),
            "--checkpoint-every", "2",
            *extra,
        ),
    )


def _feed(client, block, start=0):
    """Lockstep-feed rows ``start:`` of the block; return the acks."""
    acks = []
    for t in range(start, block.shape[0]):
        acks.append(
            client.ask({"op": "ingest", "values": block[t].tolist()})
        )
    return acks


def _answers(client):
    return [client.ask(query) for query in QUERIES]


class TestCrashResume:
    def test_resumed_answers_equal_an_uninterrupted_run(self, tmp_path):
        """SIGKILL mid-stream, resume, replay the full feed: the skipped
        prefix matches the resume watermark and every query answer is
        bit-identical to a run that never crashed."""
        block = feed_block(STEPS, N_USERS, DEFAULTS["domain"], seed=61)

        # Run 1: ingest 14 rows in chunk-sized batches, then kill -9.
        with ShardServerProc(_durable_cmd(tmp_path / "crashed")) as server:
            with server.client() as client:
                for i in range(0, 12, 3):
                    for t in range(i, i + 3):
                        client.send(
                            {"op": "ingest", "values": block[t].tolist()}
                        )
                    for _ in range(3):
                        client.recv()
                for t in (12, 13):
                    client.ask(
                        {"op": "ingest", "values": block[t].tolist()}
                    )
            server.kill()

        # Run 2: resume, replay the whole feed, query, shut down.
        with ShardServerProc(_durable_cmd(tmp_path / "crashed")) as server:
            resumed_from = server.hello["watermark"]
            assert 0 < resumed_from <= 14
            with server.client() as client:
                acks = _feed(client, block)
                skipped = [a for a in acks if a.get("skipped")]
                fresh = [a for a in acks if not a.get("skipped")]
                assert len(skipped) == resumed_from
                assert [a["t"] for a in skipped] == list(
                    range(resumed_from)
                )
                assert [a["t"] for a in fresh] == list(
                    range(resumed_from, STEPS)
                )
                resumed_answers = _answers(client)
                assert client.ask({"op": "summary"})["steps"] == STEPS
            reply, rc = server.shutdown()
            assert reply["watermark"] == STEPS
            assert rc == 0

        # Run 3: the control that never crashed, same feed and queries.
        with ShardServerProc(_durable_cmd(tmp_path / "control")) as server:
            with server.client() as client:
                _feed(client, block)
                control_answers = _answers(client)
            server.shutdown()

        for got, want in zip(resumed_answers, control_answers):
            assert_same_answer(got, want)

    def test_graceful_shutdown_checkpoints_everything(self, tmp_path):
        """A clean shutdown leaves no replay gap: the restarted tier
        skips the whole old feed and continues at the next timestamp."""
        block = feed_block(7, N_USERS, DEFAULTS["domain"], seed=67)
        with ShardServerProc(_durable_cmd(tmp_path / "state")) as server:
            with server.client() as client:
                _feed(client, block[:6])
            reply, _ = server.shutdown()
            assert reply["watermark"] == 6

        with ShardServerProc(_durable_cmd(tmp_path / "state")) as server:
            assert server.hello["watermark"] == 6
            with server.client() as client:
                acks = _feed(client, block[:6])
                assert all(a.get("skipped") for a in acks)
                fresh = client.ask(
                    {"op": "ingest", "values": block[6].tolist()}
                )
                assert fresh == {
                    "op": "ingest",
                    "t": 6,
                    "strategy": fresh["strategy"],
                }
            reply, rc = server.shutdown()
            assert reply["watermark"] == 7
            assert rc == 0


class TestReshardRefusal:
    def test_resume_under_a_different_shard_count_is_refused(
        self, tmp_path
    ):
        """The hash partition is keyed by num_shards, so per-shard state
        cannot be reinterpreted: resuming 2-shard state as 4 shards must
        fail loudly, not silently reshuffle users."""
        block = feed_block(4, N_USERS, DEFAULTS["domain"], seed=71)
        state = tmp_path / "state"
        with ShardServerProc(_durable_cmd(state, shards=2)) as server:
            with server.client() as client:
                _feed(client, block)
            server.shutdown()

        proc = subprocess.run(
            _durable_cmd(state, shards=4),
            input="",
            capture_output=True,
            text=True,
            env=serve_env(),
            timeout=120,
        )
        assert proc.returncode != 0
        assert "num_shards is 2 in the checkpoint but 4 now" in proc.stderr
        # No hello line was printed: the tier refused before listening.
        assert "listening" not in proc.stdout

    def test_config_drift_is_refused(self, tmp_path):
        """Any recorded-config mismatch (not just shard count) refuses
        resume — here the privacy budget."""
        block = feed_block(4, N_USERS, DEFAULTS["domain"], seed=73)
        state = tmp_path / "state"
        with ShardServerProc(_durable_cmd(state)) as server:
            with server.client() as client:
                _feed(client, block)
            server.shutdown()

        cmd = [
            arg if arg != str(DEFAULTS["epsilon"]) else "2.0"
            for arg in _durable_cmd(state)
        ]
        assert "2.0" in cmd  # the epsilon flag value was rewritten
        proc = subprocess.run(
            cmd,
            input="",
            capture_output=True,
            text=True,
            env=serve_env(),
            timeout=120,
        )
        assert proc.returncode != 0
        assert "epsilon" in proc.stderr


def test_front_never_runs_ahead_of_the_shards(tmp_path):
    """The documented durability invariant W_front <= W_shard, read
    straight off the state directory after a kill."""
    block = feed_block(10, N_USERS, DEFAULTS["domain"], seed=79)
    state = tmp_path / "state"
    with ShardServerProc(_durable_cmd(state)) as server:
        with server.client() as client:
            _feed(client, block)
        server.kill()

    from repro.persist import replay_wal

    front = json.loads((state / "front.json").read_text())
    w_front = front["watermark"]
    assert front["format"] == "repro-front"
    assert front["config"]["num_shards"] == 2
    shard_dirs = sorted(state.glob("shard-*"))
    assert len(shard_dirs) == 2
    for shard_dir in shard_dirs:
        _, shard_watermark = replay_wal(shard_dir / "releases.wal")
        assert w_front <= shard_watermark
