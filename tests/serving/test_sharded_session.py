"""ShardedSession conformance: the serial reference vs the solo session.

Two tiers of guarantee, per ``docs/SERVING.md``:

* **Exact** — with one shard the tier *is* the solo session: same seed,
  same draws, weight-1.0 merge.  Asserted bit-for-bit for all seven
  mechanisms.  Chunking is also exact: how ingest is batched cannot
  change any float.
* **Statistical** — with K > 1 the shards draw independent noise, so
  merged releases differ from a solo run bit-wise but must agree within
  the propagated confidence tolerance ``z * sqrt(var_merged +
  var_solo)`` cell by cell (both runs estimate the same seeded stream).
"""

import numpy as np
import pytest

from repro.engine.session import StreamSession
from repro.exceptions import InvalidParameterError
from repro.query import ReleaseStore
from repro.serving import ShardedSession
from repro.streams.online import OnlineStream

from shard_serve_util import feed_block

MECHANISMS = ["LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"]

N_USERS = 160
DOMAIN = 8
EPSILON = 1.0
WINDOW = 4
STEPS = 24
SEED = 21


def _solo_store(mechanism, block, *, chunk=4, seed=SEED):
    """Replay ``block`` through a plain StreamSession into a store."""
    stream = OnlineStream(
        n_users=block.shape[1], domain_size=DOMAIN, retain=max(4, chunk)
    )
    store = ReleaseStore(DOMAIN, capacity=None)
    session = StreamSession(
        mechanism,
        stream,
        epsilon=EPSILON,
        window=WINDOW,
        oracle="grr",
        seed=seed,
        record_trace=False,
        store=store,
    ).start()
    for i in range(0, block.shape[0], chunk):
        part = block[i : i + chunk]
        for row in part:
            stream.push(row)
        session.observe_many(i, part.shape[0])
    return store


def _sharded_store(mechanism, block, *, shards, chunk=4, seed=SEED):
    session = ShardedSession(
        mechanism,
        n_users=block.shape[1],
        domain_size=DOMAIN,
        epsilon=EPSILON,
        window=WINDOW,
        num_shards=shards,
        oracle="grr",
        seed=seed,
        capacity=None,
        retain=max(4, chunk),
    ).start()
    for i in range(0, block.shape[0], chunk):
        session.ingest_many(block[i : i + chunk])
    return session.merged


class TestSoloBitIdentity:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_one_shard_equals_the_solo_session(self, mechanism):
        """K=1: same seed passthrough, identity routing, 1.0-weight
        merge — every release, variance and strategy is bit-identical
        to a plain StreamSession over the same stream."""
        block = feed_block(STEPS, N_USERS, DOMAIN, seed=31)
        solo = _solo_store(mechanism, block)
        merged = _sharded_store(mechanism, block, shards=1)
        assert len(merged) == len(solo) == STEPS
        for t in range(STEPS):
            assert np.array_equal(
                merged.release_at(t), solo.release_at(t)
            ), (mechanism, t)
            assert merged.variance_at(t) == solo.variance_at(t)
            assert merged.strategy_at(t) == solo.strategy_at(t)


class TestChunkInvariance:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_batching_cannot_change_results(self, shards):
        """observe_many is chunk-invariant, so the tier's dynamic
        batching is correctness-neutral: any chunking of the same feed
        produces the same merged store bit-for-bit."""
        block = feed_block(STEPS, N_USERS, DOMAIN, seed=37)
        stores = [
            _sharded_store("LBD", block, shards=shards, chunk=chunk)
            for chunk in (1, 3, 4)
        ]
        for other in stores[1:]:
            for t in range(STEPS):
                assert np.array_equal(
                    stores[0].release_at(t), other.release_at(t)
                ), t
                assert stores[0].strategy_at(t) == other.strategy_at(t)


class TestStatisticalContract:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    @pytest.mark.parametrize("mechanism", ["LBD", "LPA"])
    def test_merged_releases_match_solo_within_tolerance(
        self, mechanism, shards
    ):
        """K>1 draws independent noise per shard, so equality is
        statistical: cell-wise |merged - solo| bounded by the propagated
        deviation z*sqrt(var_m + var_s) of the two independent unbiased
        estimates of the same (stationary) seeded stream."""
        z = 8.0  # deterministic seeds: generous z keeps this exact-stable
        block = feed_block(STEPS, N_USERS, DOMAIN, seed=41)
        solo = _solo_store(mechanism, block)
        merged = _sharded_store(mechanism, block, shards=shards)
        for t in range(STEPS):
            tolerance = z * np.sqrt(
                max(merged.variance_at(t), 0.0)
                + max(solo.variance_at(t), 0.0)
            )
            gap = np.abs(merged.release_at(t) - solo.release_at(t))
            assert float(gap.max()) <= tolerance, (
                f"{mechanism} K={shards} t={t}: max gap {gap.max():.4f} "
                f"> tolerance {tolerance:.4f}"
            )


class TestSessionSurface:
    def _session(self, **overrides):
        kwargs = dict(
            n_users=40,
            domain_size=5,
            epsilon=1.0,
            window=3,
            num_shards=2,
            seed=1,
            capacity=8,
            retain=4,
        )
        kwargs.update(overrides)
        return ShardedSession("LBD", **kwargs)

    def test_ingest_requires_start(self):
        session = self._session()
        with pytest.raises(InvalidParameterError, match="start"):
            session.ingest(np.zeros(40, dtype=np.int64))

    def test_double_start_is_rejected(self):
        session = self._session().start()
        with pytest.raises(InvalidParameterError, match="already started"):
            session.start()

    def test_block_validation(self):
        session = self._session().start()
        ok = np.zeros((2, 40), dtype=np.int64)
        with pytest.raises(InvalidParameterError, match="shape"):
            session.ingest_many(np.zeros((2, 39), dtype=np.int64))
        with pytest.raises(InvalidParameterError, match="integers"):
            session.ingest_many(np.zeros((2, 40), dtype=np.float64))
        with pytest.raises(InvalidParameterError, match="outside"):
            session.ingest_many(np.full((2, 40), 5, dtype=np.int64))
        with pytest.raises(InvalidParameterError, match="retain"):
            session.ingest_many(np.zeros((5, 40), dtype=np.int64))
        session.ingest_many(ok)  # the valid block still ingests

    def test_chunk_must_fit_store_capacity(self):
        session = self._session(capacity=2, retain=8).start()
        with pytest.raises(InvalidParameterError, match="capacity"):
            session.ingest_many(np.zeros((3, 40), dtype=np.int64))

    def test_acks_and_summary(self):
        session = self._session().start()
        block = feed_block(4, 40, 5, seed=2)
        acks = session.ingest_many(block[:3])
        acks.append(session.ingest(block[3]))
        assert [a["t"] for a in acks] == [0, 1, 2, 3]
        assert all(
            a["strategy"] in {"publish", "approximate", "nullified"}
            for a in acks
        )
        summary = session.summary()
        assert summary["steps"] == 4
        assert summary["num_shards"] == 2
        assert sum(summary["shard_users"]) == 40
        assert summary["total_reports"] == session.total_reports > 0
        assert summary["max_window_spend"] <= 1.0 + 1e-9
