"""Standing queries against a live ``repro serve --shards K`` server:
alert lines, interleaved with ingest acks, bit-identical to the serial
in-process registry."""

import pytest

from shard_serve_util import (
    DEFAULTS,
    ShardServerProc,
    feed_block,
    serial_reference,
    sharded_cmd,
)

N_USERS = 64
STEPS = 12
CHUNK = DEFAULTS["chunk"]


def serial_alerts(block, queries, *, shards):
    """Replay the feed through the in-process oracle: register first,
    then ingest chunk by chunk, polling after every flush."""
    from repro.query import QueryPlanner, StandingRegistry, parse_expr
    from repro.serving import ShardedSession

    session = ShardedSession(
        DEFAULTS["method"],
        n_users=block.shape[1],
        domain_size=DEFAULTS["domain"],
        epsilon=DEFAULTS["epsilon"],
        window=DEFAULTS["window"],
        num_shards=shards,
        oracle=DEFAULTS["oracle"],
        seed=DEFAULTS["seed"],
        postprocess=DEFAULTS["postprocess"],
        capacity=None,
        retain=max(4, CHUNK),
    ).start()
    registry = StandingRegistry(QueryPlanner(session.engine))
    for sid, expr in queries.items():
        registry.register(sid, parse_expr(expr))
    events = []
    for i in range(0, block.shape[0], CHUNK):
        session.ingest_many(block[i:i + CHUNK])
        events.extend(e for _, e in registry.poll())
    return events


def drain_until_standing_reply(client):
    """Read lines until the ``standing`` barrier reply; return
    (acks, alerts, barrier_reply)."""
    acks, alerts = [], []
    while True:
        line = client.recv()
        if line.get("op") == "standing":
            return acks, alerts, line
        if line.get("event") == "alert":
            alerts.append(line)
        else:
            assert "strategy" in line, f"unclassifiable line: {line}"
            acks.append(line)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_alert_stream_matches_serial_registry(shards):
    queries = {
        "pt": "threshold(point(0) > 0.1)",
        "rng": "threshold(range(0, 8) where item in {0, 2, 4} < 0.5, "
               "sigmas=1)",
        "cp": "changepoint(5, drift=0.0, threshold=0.05)",
    }
    block = feed_block(STEPS, N_USERS, DEFAULTS["domain"], seed=51)
    want = serial_alerts(block, queries, shards=shards)
    with ShardServerProc(
        sharded_cmd(shards=shards, n_users=N_USERS)
    ) as server:
        with server.client() as client:
            for sid, expr in queries.items():
                reply = client.ask(
                    {"op": "standing", "action": "register",
                     "id": sid, "expr": expr}
                )
                assert reply["op"] == "standing"
                assert reply["id"] == sid
            for t in range(STEPS):
                client.send(
                    {"op": "ingest", "values": block[t].tolist()}
                )
            client.send({"op": "standing", "action": "list"})
            acks, alerts, barrier = drain_until_standing_reply(client)
        reply, rc = server.shutdown()
        assert rc == 0
    assert [a["t"] for a in acks] == list(range(STEPS))
    # Flush boundaries are a server scheduling detail (the dispatcher
    # may flush partial chunks when the queue drains), so alerts from
    # *different* standing queries may interleave differently than the
    # serial chunk replay.  Each query's own event stream is invariant:
    # compare per id, bit for bit.
    for sid in queries:
        assert [a for a in alerts if a["id"] == sid] == [
            w for w in want if w["id"] == sid
        ], sid
    assert want, "feed never alerted; the test exercises nothing"
    assert {d["id"] for d in barrier["standing"]} == set(queries)


def test_register_describe_unregister_lifecycle():
    with ShardServerProc(
        sharded_cmd(shards=2, n_users=N_USERS)
    ) as server:
        with server.client() as client:
            reply = client.ask(
                {"op": "standing", "action": "register", "id": "a",
                 "q": {"op": "threshold",
                       "query": {"op": "point", "item": 0},
                       "cmp": ">", "value": 0.2}}
            )
            assert (reply["kind"], reply["next_t"]) == ("threshold", 0)
            dup = client.ask(
                {"op": "standing", "action": "register", "id": "a",
                 "expr": "threshold(point(1) > 0.2)"}
            )
            assert set(dup) == {"error"}
            assert "already registered" in dup["error"]
            listed = client.ask({"op": "standing", "action": "list"})
            assert [d["id"] for d in listed["standing"]] == ["a"]
            gone = client.ask(
                {"op": "standing", "action": "unregister", "id": "a"}
            )
            assert gone["removed"] is True
            again = client.ask(
                {"op": "standing", "action": "unregister", "id": "a"}
            )
            assert again["removed"] is False
            bad = client.ask({"op": "standing", "action": "replay"})
            assert set(bad) == {"error"}
        server.shutdown()


def test_invalid_standing_queries_get_structured_errors():
    with ShardServerProc(
        sharded_cmd(shards=1, n_users=N_USERS)
    ) as server:
        with server.client() as client:
            for request in [
                {"op": "standing", "action": "register", "id": "x",
                 "expr": "topk(3)"},            # not an alert predicate
                {"op": "standing", "action": "register", "id": "x",
                 "expr": "threshold(point(0) @ t=3 > 0.5)"},
                {"op": "standing", "action": "register", "id": "x"},
                {"op": "standing", "action": "register", "id": "",
                 "expr": "threshold(point(0) > 0.5)"},
            ]:
                reply = client.ask(request)
                assert set(reply) == {"error"}, reply
            # the connection survives every rejected registration
            assert client.ask({"op": "summary"})["steps"] == 0
        server.shutdown()


def test_alerts_go_to_the_registering_connection():
    block = feed_block(CHUNK, N_USERS, DEFAULTS["domain"], seed=53)
    with ShardServerProc(
        sharded_cmd(shards=2, n_users=N_USERS)
    ) as server:
        with server.client() as watcher, server.client() as feeder:
            reply = watcher.ask(
                {"op": "standing", "action": "register", "id": "w",
                 "expr": "threshold(point(0) > -1000000)"}
            )
            assert reply["kind"] == "threshold"
            for t in range(CHUNK):
                feeder.send(
                    {"op": "ingest", "values": block[t].tolist()}
                )
            # the feeder sees exactly its acks — no alert lines
            feeder_lines = [feeder.recv() for _ in range(CHUNK)]
            assert all("strategy" in line for line in feeder_lines)
            # the watcher receives one always-true alert per timestamp
            # without having sent anything since registering
            alerts = [watcher.recv() for _ in range(CHUNK)]
            assert [a["t"] for a in alerts] == list(range(CHUNK))
            assert all(a["id"] == "w" for a in alerts)
        server.shutdown()


def test_queries_still_answer_with_standing_registered():
    """Regression: the standing registry must not disturb the query
    path — answers still match the serial reference exactly."""
    from shard_serve_util import assert_same_answer

    block = feed_block(STEPS, N_USERS, DEFAULTS["domain"], seed=51)
    serial = serial_reference(block, shards=2)
    with ShardServerProc(
        sharded_cmd(shards=2, n_users=N_USERS)
    ) as server:
        with server.client() as client:
            client.ask(
                {"op": "standing", "action": "register", "id": "cp",
                 "expr": "changepoint(0, drift=0.0, threshold=0.05)"}
            )
            for t in range(STEPS):
                client.send(
                    {"op": "ingest", "values": block[t].tolist()}
                )
            client.send({"op": "standing", "action": "list"})
            drain_until_standing_reply(client)
            engine = serial.engine
            got = client.ask({"op": "point", "item": 3})
            want = {
                "op": "point", "item": 3,
                **engine.point(3).as_dict(),
            }
            assert_same_answer(got, want)
            got = client.ask(
                {"op": "query", "expr": "topk(3) where item in {0..4}"}
            )
            assert got["op"] == "topk"
            assert len(got["items"]) == 3
        server.shutdown()
