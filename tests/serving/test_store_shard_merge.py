"""Release-store merge arithmetic: rows, whole stores, query engines.

:func:`repro.query.merge_release_rows` is the single merge primitive the
entire tier shares (serial reference, asyncio server, offline
``ReleaseStore.merge``).  These tests pin its algebra — fixed shard
order, population weighting, strategy precedence — and prove the
whole-store merge is row-for-row identical to merging incrementally, the
way the serving tier does it live.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.query import QueryEngine, ReleaseStore, merge_release_rows


def _random_store(d, span, rng, *, capacity=None, start=0):
    """A shard store with ``span`` random rows appended from ``start``."""
    store = ReleaseStore(d, capacity=capacity)
    store._next_t = start
    store._evicted = start
    for t in range(start, start + span):
        strategy = ["publish", "approximate", "nullified"][
            int(rng.integers(3))
        ]
        store.append(
            t,
            rng.normal(size=d),
            float(rng.uniform(0.001, 0.1)),
            strategy,
        )
    return store


class TestMergeRows:
    def test_single_shard_row_is_bit_identical(self):
        """K=1 merges through weight 1.0 — IEEE-exact identity."""
        rng = np.random.default_rng(2)
        release = rng.normal(size=6)
        merged, variance, strategy = merge_release_rows(
            [release], [0.0625], ["approximate"], [1.0]
        )
        assert np.array_equal(merged, release)
        assert variance == 0.0625
        assert strategy == "approximate"

    def test_weighted_sum_in_fixed_shard_order(self):
        rng = np.random.default_rng(3)
        releases = [rng.normal(size=4) for _ in range(3)]
        variances = [0.01, 0.02, 0.04]
        weights = [0.5, 0.3, 0.2]
        merged, variance, _ = merge_release_rows(
            releases, variances, ["publish"] * 3, weights
        )
        expected = (
            weights[0] * releases[0]
            + weights[1] * releases[1]
            + weights[2] * releases[2]
        )
        assert np.array_equal(merged, expected)
        assert variance == (
            0.5**2 * 0.01 + 0.3**2 * 0.02 + 0.2**2 * 0.04
        )

    @pytest.mark.parametrize(
        "strategies,expected",
        [
            (["nullified", "nullified"], "nullified"),
            (["nullified", "approximate"], "approximate"),
            (["approximate", "publish"], "publish"),
            (["publish", "nullified", "approximate"], "publish"),
            (["approximate", "approximate"], "approximate"),
        ],
    )
    def test_strategy_precedence(self, strategies, expected):
        """publish > approximate > nullified: the merged row counts as a
        fresh publication iff any shard published."""
        k = len(strategies)
        _, _, strategy = merge_release_rows(
            [np.zeros(2)] * k, [0.0] * k, strategies, [1.0 / k] * k
        )
        assert strategy == expected

    def test_misaligned_inputs_are_rejected(self):
        with pytest.raises(InvalidParameterError, match="align"):
            merge_release_rows([np.zeros(2)], [0.0, 0.0], ["publish"], [1.0])
        with pytest.raises(InvalidParameterError, match="zero shard"):
            merge_release_rows([], [], [], [])


class TestStoreMerge:
    def test_matches_incremental_merge_row_for_row(self):
        """ReleaseStore.merge == the merged store the serving tier would
        have built appending merge_release_rows output per timestamp."""
        rng = np.random.default_rng(11)
        d, span = 5, 12
        stores = [_random_store(d, span, rng) for _ in range(3)]
        users = [30, 50, 20]
        weights = [u / 100 for u in users]

        merged = ReleaseStore.merge(stores, users)
        incremental = ReleaseStore(d, capacity=None)
        for t in range(span):
            release, variance, strategy = merge_release_rows(
                [s.release_at(t) for s in stores],
                [s.variance_at(t) for s in stores],
                [s.strategy_at(t) for s in stores],
                weights,
            )
            incremental.append(t, release, variance, strategy)

        assert len(merged) == len(incremental) == span
        for t in range(span):
            assert np.array_equal(
                merged.release_at(t), incremental.release_at(t)
            ), t
            assert merged.variance_at(t) == incremental.variance_at(t), t
            assert merged.strategy_at(t) == incremental.strategy_at(t), t

    def test_first_retained_row_opens_a_publication_group(self):
        """On a truncated span the first row's predecessor noise is gone,
        so it must start its own correlation group even when no shard
        published at that timestamp."""
        rng = np.random.default_rng(13)
        d = 3
        store = ReleaseStore(d, capacity=None)
        store._next_t = 4
        store._evicted = 4
        for t in range(4, 8):
            store.append(t, rng.normal(size=d), 0.01, "approximate")
        merged = ReleaseStore.merge([store], [10])
        assert merged.oldest_t == 4
        first_group = merged.publication_id_at(4)
        assert first_group >= 1  # not the zero prior
        assert all(
            merged.publication_id_at(t) == first_group for t in range(5, 8)
        )

    def test_empty_stores_merge_to_an_empty_store(self):
        merged = ReleaseStore.merge(
            [ReleaseStore(4), ReleaseStore(4)], [10, 10]
        )
        assert len(merged) == 0
        assert merged.latest_t is None

    def test_capacity_defaults_to_the_first_stores(self):
        a = ReleaseStore(2, capacity=7)
        b = ReleaseStore(2, capacity=7)
        assert ReleaseStore.merge([a, b], [1, 1]).capacity == 7
        assert (
            ReleaseStore.merge([a, b], [1, 1], capacity=None).capacity
            is None
        )

    def test_misuse_is_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(InvalidParameterError, match="zero stores"):
            ReleaseStore.merge([], [])
        with pytest.raises(InvalidParameterError, match="populations"):
            ReleaseStore.merge([ReleaseStore(3)], [10, 20])
        with pytest.raises(InvalidParameterError, match="positive"):
            ReleaseStore.merge([ReleaseStore(3), ReleaseStore(3)], [10, 0])
        with pytest.raises(InvalidParameterError, match="domain sizes"):
            ReleaseStore.merge(
                [ReleaseStore(3), ReleaseStore(4)], [10, 10]
            )
        aligned = _random_store(3, 5, rng)
        behind = _random_store(3, 4, rng)
        with pytest.raises(InvalidParameterError, match="not aligned"):
            ReleaseStore.merge([aligned, behind], [10, 10])


class TestEngineFromShards:
    def test_queries_answer_over_the_merged_store(self):
        """QueryEngine.from_shards is exactly QueryEngine over
        ReleaseStore.merge — same point/range/sliding floats."""
        rng = np.random.default_rng(19)
        d, span = 4, 10
        stores = [_random_store(d, span, rng) for _ in range(2)]
        users = [60, 40]
        engine = QueryEngine.from_shards(stores, users, confidence=0.9)
        direct = QueryEngine(
            ReleaseStore.merge(stores, users), confidence=0.9
        )
        for t in (0, span - 1):
            got = engine.point(1, t=t).as_dict()
            want = direct.point(1, t=t).as_dict()
            assert got == want
        assert (
            engine.range_count(0, 2, t=span - 1).as_dict()
            == direct.range_count(0, 2, t=span - 1).as_dict()
        )
        assert (
            engine.sliding(2, span - 1, "sum", item=0).as_dict()
            == direct.sliding(2, span - 1, "sum", item=0).as_dict()
        )
