"""Unit tests for the Markov value process substrate."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.streams import MarkovValueProcess, sample_categorical


class TestSampleCategorical:
    def test_distribution_respected(self, rng):
        probs = np.array([0.7, 0.2, 0.1])
        draws = sample_categorical(probs, 50_000, rng)
        freqs = np.bincount(draws, minlength=3) / 50_000
        assert np.allclose(freqs, probs, atol=0.01)

    def test_unnormalised_weights_accepted(self, rng):
        draws = sample_categorical(np.array([7.0, 2.0, 1.0]), 20_000, rng)
        freqs = np.bincount(draws, minlength=3) / 20_000
        assert np.allclose(freqs, [0.7, 0.2, 0.1], atol=0.02)

    def test_rejects_bad_weights(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_categorical(np.array([-1.0, 1.0]), 10, rng)
        with pytest.raises(InvalidParameterError):
            sample_categorical(np.array([0.0, 0.0]), 10, rng)
        with pytest.raises(InvalidParameterError):
            sample_categorical(np.empty(0), 10, rng)


class TestMarkovValueProcess:
    @staticmethod
    def _uniform_target(t):
        return np.full(4, 0.25)

    def test_first_step_samples_target(self):
        process = MarkovValueProcess(
            20_000, self._uniform_target, churn_rate=0.5, seed=1
        )
        values = process.step(0)
        freqs = np.bincount(values, minlength=4) / 20_000
        assert np.allclose(freqs, 0.25, atol=0.02)

    def test_zero_churn_freezes_values(self):
        process = MarkovValueProcess(
            1_000, self._uniform_target, churn_rate=0.0, seed=1
        )
        first = process.step(0).copy()
        for t in range(1, 5):
            assert np.array_equal(process.step(t), first)

    def test_full_churn_resamples_everyone(self):
        process = MarkovValueProcess(
            50_000, self._uniform_target, churn_rate=1.0, seed=1
        )
        a = process.step(0).copy()
        b = process.step(1)
        # With churn 1 the overlap should be the chance level 1/d.
        overlap = float(np.mean(a == b))
        assert overlap == pytest.approx(0.25, abs=0.02)

    def test_partial_churn_stickiness(self):
        churn = 0.1
        process = MarkovValueProcess(
            50_000, self._uniform_target, churn_rate=churn, seed=1
        )
        a = process.step(0).copy()
        b = process.step(1)
        stay = float(np.mean(a == b))
        expected = (1 - churn) + churn * 0.25
        assert stay == pytest.approx(expected, abs=0.02)

    def test_tracks_moving_target(self):
        def moving_target(t):
            return np.array([0.9, 0.1]) if t < 5 else np.array([0.1, 0.9])

        process = MarkovValueProcess(20_000, moving_target, churn_rate=0.5, seed=1)
        for t in range(20):
            values = process.step(t)
        late_freq = np.bincount(values, minlength=2) / 20_000
        assert late_freq[1] > 0.8

    def test_invalid_churn_rejected(self):
        with pytest.raises(InvalidParameterError):
            MarkovValueProcess(10, self._uniform_target, churn_rate=1.5)
        with pytest.raises(InvalidParameterError):
            MarkovValueProcess(0, self._uniform_target, churn_rate=0.5)

    def test_reset_restarts(self):
        process = MarkovValueProcess(
            100, self._uniform_target, churn_rate=0.3, seed=9
        )
        process.step(0)
        process.step(1)
        process.reset(seed=9)
        values = process.step(0)
        assert values.shape == (100,)
