"""Unit tests for the push-based OnlineStream."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, StreamAccessError
from repro.streams import OnlineStream


class TestPush:
    def test_push_assigns_sequential_timestamps(self):
        stream = OnlineStream(n_users=4, domain_size=3)
        assert stream.push([0, 1, 2, 0]) == 0
        assert stream.push([1, 1, 1, 1]) == 1
        assert stream.pushed == 2
        assert stream.horizon is None

    def test_values_roundtrip(self):
        stream = OnlineStream(n_users=3, domain_size=5)
        stream.push([4, 0, 2])
        assert np.array_equal(stream.values(0), [4, 0, 2])
        assert stream.values(0).dtype == np.int64

    def test_wrong_shape_rejected(self):
        stream = OnlineStream(n_users=3, domain_size=5)
        with pytest.raises(InvalidParameterError):
            stream.push([1, 2])
        with pytest.raises(InvalidParameterError):
            stream.push([[1, 2, 3]])

    def test_out_of_domain_rejected(self):
        stream = OnlineStream(n_users=2, domain_size=3)
        with pytest.raises(InvalidParameterError):
            stream.push([0, 3])
        with pytest.raises(InvalidParameterError):
            stream.push([-1, 0])

    def test_true_frequencies_from_snapshot(self):
        stream = OnlineStream(n_users=4, domain_size=2)
        stream.push([0, 0, 1, 1])
        assert np.allclose(stream.true_frequencies(0), [0.5, 0.5])


class TestRetention:
    def test_old_snapshots_evicted(self):
        stream = OnlineStream(n_users=2, domain_size=2, retain=2)
        for t in range(5):
            stream.push([t % 2, t % 2])
        assert np.array_equal(stream.values(4), [0, 0])
        assert np.array_equal(stream.values(3), [1, 1])
        with pytest.raises(StreamAccessError):
            stream.values(2)

    def test_future_access_rejected(self):
        stream = OnlineStream(n_users=2, domain_size=2)
        stream.push([0, 1])
        with pytest.raises(StreamAccessError):
            stream.values(1)

    def test_retain_validated(self):
        with pytest.raises(InvalidParameterError):
            OnlineStream(n_users=2, domain_size=2, retain=0)
