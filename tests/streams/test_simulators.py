"""Unit tests for the real-world dataset simulators (Section 7.1.2 subs)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.streams import (
    FoursquareSimulator,
    TaobaoSimulator,
    TaxiSimulator,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(20).sum() == pytest.approx(1.0)

    def test_rank_ordering(self):
        weights = zipf_weights(10, exponent=1.2)
        assert (np.diff(weights) < 0).all()

    def test_exponent_controls_skew(self):
        flat = zipf_weights(10, exponent=0.5)
        steep = zipf_weights(10, exponent=2.0)
        assert steep[0] > flat[0]


class TestPaperDimensions:
    """Simulators default to the exact N/T/d the paper reports."""

    def test_taxi(self):
        sim = TaxiSimulator(seed=1)
        assert sim.n_users == 10_357
        assert sim.horizon == 886
        assert sim.domain_size == 5

    def test_foursquare(self):
        sim = FoursquareSimulator(seed=1)
        assert sim.n_users == 265_149 // 8  # default scale 8
        assert sim.horizon == 447
        assert sim.domain_size == 77

    def test_taobao(self):
        sim = TaobaoSimulator(seed=1)
        assert sim.n_users == 1_023_154 // 32  # default scale 32
        assert sim.horizon == 432
        assert sim.domain_size == 117

    def test_scale_divides_population(self):
        sim = TaxiSimulator(scale=10, seed=1)
        assert sim.n_users == 10_357 // 10

    def test_invalid_scale_rejected(self):
        with pytest.raises(InvalidParameterError):
            TaxiSimulator(scale=0, seed=1)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: TaxiSimulator(n_users=2_000, horizon=40, seed=3),
        lambda: FoursquareSimulator(n_users=2_000, horizon=40, scale=1, seed=3),
        lambda: TaobaoSimulator(n_users=2_000, horizon=40, scale=1, seed=3),
    ],
    ids=["taxi", "foursquare", "taobao"],
)
class TestSimulatorBehaviour:
    def test_values_in_domain(self, factory):
        sim = factory()
        for t in range(10):
            values = sim.values(t)
            assert values.shape == (2_000,)
            assert values.min() >= 0
            assert values.max() < sim.domain_size

    def test_frequencies_sum_to_one(self, factory):
        sim = factory()
        for t in range(5):
            assert sim.true_frequencies(t).sum() == pytest.approx(1.0)

    def test_temporal_correlation(self, factory):
        """Consecutive histograms are closer than distant ones on average."""
        sim = factory()
        freqs = sim.frequency_matrix(40)
        near = np.mean(np.abs(np.diff(freqs, axis=0)))
        far = np.mean(np.abs(freqs[30:] - freqs[:10]))
        assert near < far

    def test_reset_replays_from_start(self, factory):
        sim = factory()
        sim.values(0)
        sim.values(1)
        sim.reset()
        values = sim.values(0)
        assert values.shape == (2_000,)

    def test_reset_replays_bit_identically(self, factory):
        """reset() must replay the exact stream — the equivalence the
        parallel engine relies on when workers rebuild datasets."""
        sim = factory()
        first = [sim.values(t).copy() for t in range(10)]
        sim.reset()
        replay = [sim.values(t) for t in range(10)]
        for a, b in zip(first, replay):
            assert (a == b).all()

    def test_fresh_build_matches_reset(self, factory):
        sim = factory()
        first = [sim.values(t).copy() for t in range(10)]
        fresh = factory()
        rebuilt = [fresh.values(t) for t in range(10)]
        for a, b in zip(first, rebuilt):
            assert (a == b).all()


class TestTaxiDiurnalCycle:
    def test_distribution_shifts_through_day(self):
        sim = TaxiSimulator(n_users=5_000, horizon=200, seed=5, churn_rate=0.8)
        freqs = sim.frequency_matrix(200)
        # Region shares at opposite day phases (slot 0 vs slot 72) differ.
        morning = freqs[0:10].mean(axis=0)
        evening = freqs[72:82].mean(axis=0)
        assert np.abs(morning - evening).max() > 0.01


class TestTaobaoBursts:
    def test_burst_changes_target(self):
        sim = TaobaoSimulator(
            n_users=100,
            horizon=300,
            scale=1,
            seed=11,
            burst_probability=1.0,
            burst_boost=50.0,
            burst_length=5,
        )
        target = sim.target_distribution(0)
        # At t=0 the diurnal tilt is neutral, so without the burst the
        # target would equal the base Zipf weights; the boosted category
        # stands out as a large ratio against its base weight.
        ratio = target / sim._base
        assert ratio.max() / np.median(ratio) > 10.0

    def test_zipf_skew_present(self):
        sim = TaobaoSimulator(n_users=20_000, horizon=10, scale=1, seed=2)
        freqs = sim.true_frequencies(0)
        # Head category dominates the median category by a wide margin.
        assert freqs.max() > 10 * np.median(freqs[freqs > 0] + 1e-9)
