"""Unit tests for stream dataset base classes."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, StreamAccessError
from repro.streams import GenerativeStream, MaterializedStream


class TestMaterializedStream:
    def test_basic_properties(self, rng):
        values = rng.integers(0, 4, size=(10, 50))
        stream = MaterializedStream(values, domain_size=4)
        assert stream.n_users == 50
        assert stream.domain_size == 4
        assert stream.horizon == 10

    def test_values_random_access(self, rng):
        values = rng.integers(0, 4, size=(10, 50))
        stream = MaterializedStream(values, domain_size=4)
        assert np.array_equal(stream.values(7), values[7])
        assert np.array_equal(stream.values(0), values[0])

    def test_true_frequencies_sum_to_one(self, rng):
        values = rng.integers(0, 4, size=(5, 100))
        stream = MaterializedStream(values, domain_size=4)
        for t in range(5):
            assert stream.true_frequencies(t).sum() == pytest.approx(1.0)

    def test_true_counts_match_values(self):
        values = np.array([[0, 0, 1, 2, 2, 2]])
        stream = MaterializedStream(values, domain_size=3)
        assert np.array_equal(stream.true_counts(0), [2, 1, 3])

    def test_frequency_matrix_shape(self, rng):
        values = rng.integers(0, 3, size=(8, 20))
        stream = MaterializedStream(values, domain_size=3)
        assert stream.frequency_matrix().shape == (8, 3)

    def test_domain_inferred(self):
        stream = MaterializedStream(np.array([[0, 1, 2]]))
        assert stream.domain_size == 3

    def test_out_of_horizon_raises(self, rng):
        stream = MaterializedStream(rng.integers(0, 2, size=(5, 10)))
        with pytest.raises(StreamAccessError):
            stream.values(5)
        with pytest.raises(StreamAccessError):
            stream.values(-1)

    def test_invalid_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            MaterializedStream(np.array([[0, 5]]), domain_size=3)
        with pytest.raises(InvalidParameterError):
            MaterializedStream(np.array([0, 1, 2]))  # 1-D


class _CountingStream(GenerativeStream):
    """Generative stream that records how many times _advance ran."""

    def __init__(self):
        super().__init__(n_users=10, domain_size=2, horizon=20)
        self.advances = 0

    def _advance(self, t):
        self.advances += 1
        return np.full(10, t % 2, dtype=np.int64)

    def _reset_state(self):
        self.advances = 0


class TestGenerativeStream:
    def test_in_order_access(self):
        stream = _CountingStream()
        for t in range(5):
            assert np.array_equal(stream.values(t), np.full(10, t % 2))
        assert stream.advances == 5

    def test_repeated_reads_are_cached(self):
        stream = _CountingStream()
        stream.values(0)
        stream.values(0)
        stream.values(0)
        assert stream.advances == 1

    def test_skipping_ahead_raises(self):
        stream = _CountingStream()
        stream.values(0)
        with pytest.raises(StreamAccessError):
            stream.values(2)

    def test_rewind_raises_without_reset(self):
        stream = _CountingStream()
        stream.values(0)
        stream.values(1)
        with pytest.raises(StreamAccessError):
            stream.values(0)

    def test_reset_allows_replay(self):
        stream = _CountingStream()
        stream.values(0)
        stream.values(1)
        stream.reset()
        assert np.array_equal(stream.values(0), np.full(10, 0))

    def test_horizon_enforced(self):
        stream = _CountingStream()
        with pytest.raises(StreamAccessError):
            stream.values(20)

    def test_frequency_matrix_requires_horizon_for_unbounded(self):
        class Unbounded(_CountingStream):
            def __init__(self):
                GenerativeStream.__init__(
                    self, n_users=10, domain_size=2, horizon=None
                )
                self.advances = 0

        stream = Unbounded()
        with pytest.raises(StreamAccessError):
            stream.frequency_matrix()
        assert stream.frequency_matrix(horizon=3).shape == (3, 2)


class TestTrueFrequenciesRange:
    def test_materialized_matches_per_timestamp(self, rng):
        values = rng.integers(0, 6, size=(15, 80))
        stream = MaterializedStream(values, domain_size=6)
        block = stream.true_frequencies_range(3, 11)
        assert block.shape == (8, 6)
        for i, t in enumerate(range(3, 11)):
            assert np.array_equal(block[i], stream.true_frequencies(t))

    def test_generative_fallback_matches_per_timestamp(self):
        from repro.streams import TaxiSimulator

        a = TaxiSimulator(n_users=100, horizon=10, seed=3)
        block = a.true_frequencies_range(0, 10)
        b = TaxiSimulator(n_users=100, horizon=10, seed=3)
        for t in range(10):
            assert np.array_equal(block[t], b.true_frequencies(t))

    def test_empty_range(self, rng):
        stream = MaterializedStream(rng.integers(0, 3, size=(5, 10)), 3)
        assert stream.true_frequencies_range(2, 2).shape == (0, 3)

    def test_invalid_range_rejected(self, rng):
        stream = MaterializedStream(rng.integers(0, 3, size=(5, 10)), 3)
        with pytest.raises(StreamAccessError):
            stream.true_frequencies_range(3, 1)
        with pytest.raises(StreamAccessError):
            stream.true_frequencies_range(0, 6)

    def test_frequency_matrix_uses_range(self, rng):
        values = rng.integers(0, 4, size=(6, 30))
        stream = MaterializedStream(values, domain_size=4)
        assert np.array_equal(
            stream.frequency_matrix(),
            np.stack([stream.true_frequencies(t) for t in range(6)]),
        )

    def test_random_access_flags(self, rng):
        from repro.streams import OnlineStream, TaxiSimulator

        assert MaterializedStream(rng.integers(0, 3, size=(5, 10)), 3).random_access
        assert not TaxiSimulator(n_users=10, horizon=5, seed=0).random_access
        assert not OnlineStream(n_users=10, domain_size=3).random_access
