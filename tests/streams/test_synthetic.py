"""Unit tests for the synthetic stream generators (Section 7.1.1)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.streams import (
    BinaryStream,
    lns_probability_sequence,
    log_probability_sequence,
    make_constant,
    make_lns,
    make_log,
    make_sin,
    make_step,
    sin_probability_sequence,
    step_probability_sequence,
)


class TestProbabilitySequences:
    def test_lns_starts_at_p0(self):
        probs = lns_probability_sequence(100, p0=0.05, seed=1)
        assert probs[0] == pytest.approx(0.05)

    def test_lns_within_unit_interval(self):
        probs = lns_probability_sequence(5_000, q_std=0.05, seed=1)
        assert probs.min() >= 0.0
        assert probs.max() <= 1.0

    def test_lns_step_scale(self):
        # Start mid-range so the [0, 1] clipping never distorts the walk.
        probs = lns_probability_sequence(2_000, p0=0.5, q_std=0.0025, seed=2)
        steps = np.diff(probs)
        assert steps.std() == pytest.approx(0.0025, rel=0.1)

    def test_sin_matches_formula(self):
        probs = sin_probability_sequence(50, amplitude=0.05, b=0.01, offset=0.075)
        t = np.arange(50)
        assert np.allclose(probs, 0.05 * np.sin(0.01 * t) + 0.075)

    def test_log_is_monotone_increasing(self):
        probs = log_probability_sequence(500)
        assert (np.diff(probs) >= 0).all()

    def test_log_asymptote(self):
        probs = log_probability_sequence(10_000, amplitude=0.25, b=0.01)
        assert probs[-1] == pytest.approx(0.25, abs=1e-4)

    def test_step_alternates(self):
        probs = step_probability_sequence(300, low=0.05, high=0.2, period=100)
        assert probs[0] == 0.05
        assert probs[150] == 0.2
        assert probs[250] == 0.05


class TestBinaryStream:
    def test_frequency_tracks_probability(self):
        probs = np.array([0.1, 0.5, 0.9])
        stream = BinaryStream(probs, n_users=1_000, seed=0)
        for t, p in enumerate(probs):
            assert stream.true_frequencies(t)[1] == pytest.approx(p, abs=1e-3)

    def test_domain_is_binary(self):
        stream = BinaryStream(np.array([0.2]), n_users=100, seed=0)
        assert stream.domain_size == 2

    def test_rejects_invalid_probabilities(self):
        with pytest.raises(InvalidParameterError):
            BinaryStream(np.array([1.2]), n_users=100)
        with pytest.raises(InvalidParameterError):
            BinaryStream(np.array([-0.1]), n_users=100)
        with pytest.raises(InvalidParameterError):
            BinaryStream(np.empty(0), n_users=100)

    def test_seed_reproducible(self):
        a = BinaryStream(np.array([0.3, 0.4]), n_users=200, seed=5)
        b = BinaryStream(np.array([0.3, 0.4]), n_users=200, seed=5)
        assert np.array_equal(a.values(0), b.values(0))
        assert np.array_equal(a.values(1), b.values(1))


class TestFactories:
    @pytest.mark.parametrize(
        "factory,name",
        [
            (make_lns, "LNS"),
            (make_sin, "Sin"),
            (make_log, "Log"),
            (make_step, "Step"),
            (make_constant, "Constant"),
        ],
    )
    def test_factory_metadata(self, factory, name):
        stream = factory(n_users=500, horizon=30, seed=1)
        assert stream.name == name
        assert stream.n_users == 500
        assert stream.horizon == 30
        assert stream.domain_size == 2

    def test_paper_defaults(self):
        """Default sizes are the paper's T=800, N=200,000."""
        from repro.streams.synthetic import DEFAULT_N, DEFAULT_T

        assert DEFAULT_T == 800
        assert DEFAULT_N == 200_000

    def test_constant_stream_is_constant(self):
        stream = make_constant(n_users=400, horizon=10, p=0.1, seed=2)
        freqs = stream.frequency_matrix()
        assert np.allclose(freqs, freqs[0])

    def test_sin_oscillates(self):
        stream = make_sin(n_users=2_000, horizon=700, b=0.02, seed=2)
        series = stream.frequency_matrix()[:, 1]
        assert series.max() > 0.11
        assert series.min() < 0.04
