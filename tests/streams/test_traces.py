"""Tests for real-trace loading utilities."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.streams import (
    load_value_matrix,
    save_value_matrix,
    stream_from_events,
)


class TestLoadValueMatrix:
    def test_npy_round_trip(self, tmp_path, rng):
        values = rng.integers(0, 4, size=(10, 30))
        np.save(tmp_path / "trace.npy", values)
        stream = load_value_matrix(tmp_path / "trace.npy", domain_size=4)
        assert stream.n_users == 30
        assert stream.horizon == 10
        assert np.array_equal(stream.values(3), values[3])

    def test_csv_load(self, tmp_path):
        (tmp_path / "trace.csv").write_text("0,1,2\n2,1,0\n")
        stream = load_value_matrix(tmp_path / "trace.csv")
        assert stream.horizon == 2
        assert stream.n_users == 3
        assert stream.domain_size == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_value_matrix(tmp_path / "nope.npy")

    def test_save_round_trip(self, tmp_path, rng):
        values = rng.integers(0, 3, size=(5, 8))
        np.save(tmp_path / "a.npy", values)
        stream = load_value_matrix(tmp_path / "a.npy")
        save_value_matrix(stream, tmp_path / "b.npy")
        again = load_value_matrix(tmp_path / "b.npy")
        assert np.array_equal(again.values(4), values[4])

    def test_save_requires_npy(self, tmp_path, rng):
        np.save(tmp_path / "a.npy", rng.integers(0, 3, size=(2, 2)))
        stream = load_value_matrix(tmp_path / "a.npy")
        with pytest.raises(InvalidParameterError):
            save_value_matrix(stream, tmp_path / "b.csv")


class TestStreamFromEvents:
    def test_forward_fill(self):
        events = [(0, 1, 2), (1, 3, 1)]
        stream = stream_from_events(events, n_users=2, horizon=5, domain_size=3)
        # User 0: default 0 at t=0, then 2 from t=1; user 1: 1 from t=3.
        assert stream.values(0).tolist() == [0, 0]
        assert stream.values(1).tolist() == [2, 0]
        assert stream.values(2).tolist() == [2, 0]
        assert stream.values(3).tolist() == [2, 1]
        assert stream.values(4).tolist() == [2, 1]

    def test_multiple_events_same_user(self):
        events = [(0, 0, 1), (0, 2, 2), (0, 4, 0)]
        stream = stream_from_events(events, n_users=1, horizon=6, domain_size=3)
        assert [int(stream.values(t)[0]) for t in range(6)] == [1, 1, 2, 2, 0, 0]

    def test_unsorted_events_accepted(self):
        events = [(0, 3, 1), (0, 0, 2)]
        stream = stream_from_events(events, n_users=1, horizon=5, domain_size=3)
        assert int(stream.values(1)[0]) == 2
        assert int(stream.values(4)[0]) == 1

    def test_invalid_user_rejected(self):
        with pytest.raises(InvalidParameterError):
            stream_from_events([(5, 0, 1)], n_users=2, horizon=3)

    def test_invalid_value_rejected(self):
        with pytest.raises(InvalidParameterError):
            stream_from_events([(0, 0, -1)], n_users=2, horizon=3)

    def test_usable_in_session(self):
        from repro.engine import run_stream

        rng = np.random.default_rng(0)
        events = [
            (u, int(t), int(rng.integers(0, 3)))
            for u in range(200)
            for t in rng.choice(30, size=4, replace=False)
        ]
        stream = stream_from_events(events, n_users=200, horizon=30, domain_size=3)
        result = run_stream("LPU", stream, epsilon=1.0, window=5, seed=0)
        assert result.horizon == 30
