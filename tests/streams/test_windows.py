"""Unit tests for the sliding-window sum helper."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.streams import SlidingWindowSum


class TestSlidingWindowSum:
    def test_sum_inside_window(self):
        sws = SlidingWindowSum(3)
        sws.record(0, 1.0)
        sws.record(1, 2.0)
        sws.record(2, 4.0)
        assert sws.window_sum(2) == pytest.approx(7.0)

    def test_eviction(self):
        sws = SlidingWindowSum(3)
        for t, v in enumerate([1.0, 2.0, 4.0, 8.0]):
            sws.record(t, v)
        # Window ending at 3 covers t in {1, 2, 3}.
        assert sws.window_sum(3) == pytest.approx(14.0)

    def test_query_without_record_advances_eviction(self):
        sws = SlidingWindowSum(2)
        sws.record(0, 5.0)
        assert sws.window_sum(0) == 5.0
        assert sws.window_sum(1) == 5.0
        assert sws.window_sum(2) == 0.0

    def test_sparse_timestamps(self):
        sws = SlidingWindowSum(10)
        sws.record(0, 1.0)
        sws.record(7, 2.0)
        assert sws.window_sum(7) == pytest.approx(3.0)
        assert sws.window_sum(12) == pytest.approx(2.0)

    def test_window_one_keeps_only_current(self):
        sws = SlidingWindowSum(1)
        sws.record(0, 3.0)
        sws.record(1, 4.0)
        assert sws.window_sum(1) == pytest.approx(4.0)

    def test_non_monotone_rejected(self):
        sws = SlidingWindowSum(3)
        sws.record(5, 1.0)
        with pytest.raises(InvalidParameterError):
            sws.record(5, 1.0)
        with pytest.raises(InvalidParameterError):
            sws.record(4, 1.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowSum(0)

    def test_len_counts_live_entries(self):
        sws = SlidingWindowSum(2)
        sws.record(0, 1.0)
        sws.record(1, 1.0)
        sws.record(2, 1.0)
        assert len(sws) == 2
