"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRun:
    def test_basic_run(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "LPA",
                "--dataset",
                "LNS",
                "--size",
                "smoke",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "LPA on LNS" in out
        assert "MRE" in out
        assert "CFPU" in out
        assert "max window spend" in out

    def test_saves_artifacts(self, capsys, tmp_path):
        json_path = tmp_path / "session.json"
        csv_path = tmp_path / "session.csv"
        code = main(
            [
                "run",
                "--method",
                "LBU",
                "--dataset",
                "Sin",
                "--size",
                "smoke",
                "--save-json",
                str(json_path),
                "--save-csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert json.loads(json_path.read_text())["mechanism"] == "LBU"
        assert csv_path.read_text().startswith("t,strategy")

    def test_unknown_method_is_graceful(self, capsys):
        code = main(["run", "--method", "NOPE", "--size", "smoke"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_dataset_is_graceful(self, capsys):
        code = main(
            ["run", "--method", "LBU", "--dataset", "NOPE", "--size", "smoke"]
        )
        assert code == 2


class TestListing:
    def test_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"):
            assert name in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("LNS", "Taxi", "Taobao"):
            assert name in out
        assert "200000" in out  # paper tier visible


class TestFigureAndTable:
    def test_fig7_smoke(self, capsys):
        assert main(["figure", "fig7", "--size", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "AUC" in out

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--size", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "eps=1, w=20" in out
        assert "measured/paper" in out


class TestStream:
    @staticmethod
    def _feed(monkeypatch, lines):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))

    @staticmethod
    def _snapshot_lines(n_lines=12, n_users=60, domain=3, sep=" "):
        import numpy as np

        rng = np.random.default_rng(5)
        return [
            sep.join(str(v) for v in rng.integers(0, domain, size=n_users))
            for _ in range(n_lines)
        ]

    def test_online_session_from_stdin(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._snapshot_lines())
        code = main(
            [
                "stream",
                "--method",
                "LBD",
                "--domain-size",
                "3",
                "--epsilon",
                "1",
                "--window",
                "4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        rows = [line for line in captured.out.splitlines() if line]
        assert len(rows) == 12
        first = rows[0].split(",")
        assert first[0] == "0"
        assert first[1] in ("publish", "approximate", "nullified")
        assert len(first) == 2 + 3  # t, strategy, d release values
        assert "online session: 12 steps" in captured.err
        assert "max window spend" in captured.err

    def test_trace_metrics_and_comma_input(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._snapshot_lines(sep=","))
        code = main(
            [
                "stream",
                "--method",
                "LBU",
                "--domain-size",
                "3",
                "--trace",
                "--emit",
                "none",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert "MRE" in captured.err
        assert "MSE" in captured.err

    def test_max_steps_truncates(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._snapshot_lines(n_lines=20))
        code = main(
            [
                "stream",
                "--method",
                "LPU",
                "--domain-size",
                "3",
                "--max-steps",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert len([line for line in captured.out.splitlines() if line]) == 5
        assert "5 steps" in captured.err

    def test_file_input(self, capsys, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("\n".join(self._snapshot_lines(n_lines=4)) + "\n")
        code = main(
            [
                "stream",
                "--method",
                "LBU",
                "--domain-size",
                "3",
                "--input",
                str(path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert len([line for line in captured.out.splitlines() if line]) == 4

    def test_empty_input_is_error(self, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(""))
        code = main(["stream", "--method", "LBU", "--domain-size", "3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no input" in captured.err

    def test_bad_values_are_graceful(self, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO("0 1 9\n"))
        code = main(["stream", "--method", "LBU", "--domain-size", "3"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("line", ["not a number", "0.5 1 2", "1 2 x"])
    def test_non_integer_input_is_graceful(self, capsys, monkeypatch, line):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(line + "\n"))
        code = main(["stream", "--method", "LBU", "--domain-size", "3"])
        assert code == 2
        assert "integer values" in capsys.readouterr().err


class TestServe:
    @staticmethod
    def _feed(monkeypatch, requests):
        import io
        import sys as _sys

        payload = "\n".join(json.dumps(r) for r in requests) + "\n"
        monkeypatch.setattr(_sys, "stdin", io.StringIO(payload))

    @staticmethod
    def _requests(n_steps=12, n_users=80, domain=4):
        import numpy as np

        rng = np.random.default_rng(2)
        return [
            {"op": "ingest", "values": rng.integers(0, domain, n_users).tolist()}
            for _ in range(n_steps)
        ]

    @staticmethod
    def _serve(extra=()):
        return [
            "serve", "--method", "LBD", "--domain-size", "4",
            "--epsilon", "1", "--window", "4", *extra,
        ]

    def test_ingest_and_queries(self, capsys, monkeypatch):
        requests = self._requests() + [
            {"op": "topk", "k": 2},
            {"op": "point", "item": 1},
            {"op": "range", "lo": 0, "hi": 2},
            {"op": "sliding", "t0": 4, "t1": 11, "agg": "mean", "item": 0},
            {"op": "summary"},
        ]
        self._feed(monkeypatch, requests)
        assert main(self._serve()) == 0
        lines = [json.loads(raw) for raw in capsys.readouterr().out.splitlines()]
        assert len(lines) == len(requests)
        ingests = [obj for obj in lines if obj.get("op") == "ingest"]
        assert [obj["t"] for obj in ingests] == list(range(12))
        topk = lines[12]
        assert topk["op"] == "topk" and len(topk["items"]) == 2
        assert topk["items"][0]["rank"] == 1
        assert "ci" in topk["items"][0]
        point = lines[13]
        assert point["item"] == 1 and point["ci"][0] < point["ci"][1]
        summary = lines[16]
        assert summary["steps"] == 12 and summary["retained"] == 12

    def test_ring_capacity_bounds_and_reports_eviction(
        self, capsys, monkeypatch
    ):
        requests = self._requests(n_steps=20) + [
            {"op": "summary"},
            {"op": "sliding", "t0": 0, "t1": 19, "agg": "sum", "item": 0},
        ]
        self._feed(monkeypatch, requests)
        assert main(self._serve(["--capacity", "8"])) == 0
        lines = [json.loads(raw) for raw in capsys.readouterr().out.splitlines()]
        summary = lines[20]
        assert summary["retained"] == 8
        assert summary["oldest_t"] == 12
        assert summary["evicted"] == 12
        assert "EvictedSpanError" in lines[21]["error"]

    def test_query_before_ingest_is_error_line(self, capsys, monkeypatch):
        self._feed(monkeypatch, [{"op": "topk", "k": 2}])
        assert main(self._serve()) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert "ingest" in line["error"]

    def test_malformed_json_keeps_serving(self, capsys, monkeypatch):
        import io
        import sys as _sys

        good = json.dumps(self._requests(1)[0])
        monkeypatch.setattr(
            _sys, "stdin", io.StringIO("{not json}\n" + good + "\n")
        )
        assert main(self._serve()) == 0
        lines = [json.loads(raw) for raw in capsys.readouterr().out.splitlines()]
        assert "error" in lines[0]
        assert lines[1]["op"] == "ingest"

    def test_empty_input_is_error(self, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(""))
        assert main(self._serve()) == 2
        assert "no requests" in capsys.readouterr().err


class TestQuery:
    @pytest.fixture()
    def saved_run(self, tmp_path):
        path = tmp_path / "session.json"
        code = main(
            [
                "run", "--method", "LPA", "--dataset", "LNS", "--size",
                "smoke", "--seed", "1", "--save-json", str(path),
            ]
        )
        assert code == 0
        return path

    def test_topk(self, capsys, saved_run):
        capsys.readouterr()
        assert main(["query", str(saved_run), "topk", "--k", "2"]) == 0
        answer = json.loads(capsys.readouterr().out)
        assert len(answer["items"]) == 2
        assert answer["items"][0]["estimate"] >= answer["items"][1]["estimate"]

    def test_point_range_sliding_info(self, capsys, saved_run):
        capsys.readouterr()
        assert main(
            ["query", str(saved_run), "point", "--item", "0", "--t", "5"]
        ) == 0
        point = json.loads(capsys.readouterr().out)
        assert point["ci"][0] <= point["estimate"] <= point["ci"][1]
        assert main(
            ["query", str(saved_run), "range", "--lo", "0", "--hi", "2"]
        ) == 0
        assert "estimate" in json.loads(capsys.readouterr().out)
        assert main(
            [
                "query", str(saved_run), "sliding", "--item", "1",
                "--agg", "mean",
            ]
        ) == 0
        sliding = json.loads(capsys.readouterr().out)
        assert sliding["t0"] == 0 and sliding["agg"] == "mean"
        assert main(["query", str(saved_run), "info"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["mechanism"] == "LPA" and info["domain_size"] == 2

    def test_missing_args_are_graceful(self, capsys, saved_run):
        capsys.readouterr()
        assert main(["query", str(saved_run), "point"]) == 2
        assert "item" in capsys.readouterr().err

    def test_missing_file_is_graceful(self, capsys, tmp_path):
        with pytest.raises((SystemExit, OSError)):
            main(["query", str(tmp_path / "nope.json"), "info"])


class TestQueryExpr:
    """`repro query --expr`: the DSL text syntax on saved runs."""

    saved_run = TestQuery.saved_run

    def test_expr_point_matches_classic_verb(self, capsys, saved_run):
        capsys.readouterr()
        assert main(
            ["query", str(saved_run), "point", "--item", "0", "--t", "5"]
        ) == 0
        classic = json.loads(capsys.readouterr().out)
        assert main(
            ["query", str(saved_run), "--expr", "point(0) @ t=5"]
        ) == 0
        via_expr = json.loads(capsys.readouterr().out)
        assert via_expr == classic

    def test_expr_composites(self, capsys, saved_run):
        capsys.readouterr()
        assert main(
            ["query", str(saved_run), "--expr",
             "groupby(a: {0}; b: {1}) @ t=5"]
        ) == 0
        grouped = json.loads(capsys.readouterr().out)
        assert set(grouped["groups"]) == {"a", "b"}
        assert main(
            ["query", str(saved_run), "--expr",
             "threshold(point(0) > 0.2, sigmas=1)"]
        ) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["triggered"] in (True, False)
        assert main(
            ["query", str(saved_run), "--expr",
             "changepoint(0, drift=0.0, threshold=0.5)"]
        ) == 0
        assert "alarms" in json.loads(capsys.readouterr().out)

    def test_verb_xor_expr_required(self, capsys, saved_run):
        capsys.readouterr()
        assert main(["query", str(saved_run)]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            ["query", str(saved_run), "point", "--item", "0",
             "--expr", "point(0)"]
        ) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_bad_expr_is_graceful(self, capsys, saved_run):
        capsys.readouterr()
        assert main(["query", str(saved_run), "--expr", "frob(1)"]) == 2
        assert "frob" in capsys.readouterr().err


class TestServeStanding:
    """Standing queries in the solo stdin serve loop."""

    _feed = staticmethod(TestServe._feed)
    _requests = staticmethod(TestServe._requests)
    _serve = staticmethod(TestServe._serve)

    def test_threshold_alert_lines_interleave_with_acks(
        self, capsys, monkeypatch
    ):
        ingests = self._requests(n_steps=8)
        requests = (
            ingests[:4]
            + [{"op": "standing", "action": "register", "id": "w",
                "expr": "threshold(point(0) > -1000000)"}]
            + ingests[4:]
            + [{"op": "standing", "action": "list"}]
        )
        self._feed(monkeypatch, requests)
        assert main(self._serve(["--chunk", "2"])) == 0
        lines = [
            json.loads(raw)
            for raw in capsys.readouterr().out.splitlines()
        ]
        alerts = [x for x in lines if x.get("event") == "alert"]
        # registered at watermark 4: one always-true alert per later t
        assert [a["t"] for a in alerts] == [4, 5, 6, 7]
        assert all(a["id"] == "w" for a in alerts)
        register = next(x for x in lines if x.get("action") == "register")
        assert register["next_t"] == 4
        listed = next(x for x in lines if x.get("action") == "list")
        assert listed["standing"][0]["next_t"] == 8

    def test_changepoint_standing_matches_batch_rerun(
        self, capsys, monkeypatch
    ):
        ingests = self._requests(n_steps=12)
        requests = (
            # the solo loop builds its session from the first ingest
            # row, so standing queries register once data is flowing
            ingests[:4]
            + [{"op": "standing", "action": "register", "id": "cp",
                "expr": "changepoint(0, drift=0.0, threshold=0.05)"}]
            + ingests[4:]
            # the one-shot changepoint query over the same span IS the
            # full batch re-run: incremental alerts must equal it
            + [{"op": "query",
                "expr": "changepoint(0, drift=0.0, threshold=0.05) "
                        "@ 4..11"}]
        )
        self._feed(monkeypatch, requests)
        assert main(self._serve(["--chunk", "4"])) == 0
        lines = [
            json.loads(raw)
            for raw in capsys.readouterr().out.splitlines()
        ]
        alerts = [x for x in lines if x.get("event") == "alert"]
        assert all(a["kind"] == "changepoint" for a in alerts)
        batch = next(x for x in lines if x.get("op") == "changepoint")
        assert (batch["t0"], batch["t1"]) == (4, 11)
        assert [a["t"] for a in alerts] == batch["alarms"]
        assert alerts, "the stream never alarmed; nothing was exercised"

    def test_standing_errors_keep_serving(self, capsys, monkeypatch):
        requests = (
            self._requests(n_steps=2)
            + [
                {"op": "standing", "action": "register", "id": "x",
                 "expr": "topk(3)"},
                {"op": "standing", "action": "nope"},
                {"op": "standing", "action": "register"},
                {"op": "point", "item": 0},
            ]
        )
        self._feed(monkeypatch, requests)
        assert main(self._serve()) == 0
        lines = [
            json.loads(raw)
            for raw in capsys.readouterr().out.splitlines()
        ]
        assert sum(1 for x in lines if set(x) == {"error"}) == 3
        assert lines[-1]["op"] == "point"

    def test_unknown_op_lists_the_full_surface(self, capsys, monkeypatch):
        requests = self._requests(n_steps=1) + [{"op": "mystery"}]
        self._feed(monkeypatch, requests)
        assert main(self._serve()) == 0
        lines = [
            json.loads(raw)
            for raw in capsys.readouterr().out.splitlines()
        ]
        assert "mystery" in lines[-1]["error"]
        assert "changepoint" in lines[-1]["error"]

    def test_query_envelope_in_serve(self, capsys, monkeypatch):
        requests = self._requests(n_steps=4) + [
            {"op": "query", "expr": "topk(2)"},
            {"op": "topk", "k": 2},
            {"op": "query",
             "q": {"op": "threshold",
                   "query": {"op": "point", "item": 0},
                   "cmp": ">", "value": 0.0}},
        ]
        self._feed(monkeypatch, requests)
        assert main(self._serve()) == 0
        lines = [
            json.loads(raw)
            for raw in capsys.readouterr().out.splitlines()
        ]
        assert lines[4] == lines[5]  # expr and classic op answer alike
        assert lines[6]["op"] == "threshold"
        assert lines[6]["triggered"] in (True, False)


class TestServeRobustness:
    _feed = staticmethod(TestServe._feed)
    _requests = staticmethod(TestServe._requests)
    _serve = staticmethod(TestServe._serve)

    def test_bad_method_fails_fast_before_any_request(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._requests(2))
        assert main(self._serve()[:1] + [
            "--method", "NOPE", "--domain-size", "4",
        ]) == 2
        captured = capsys.readouterr()
        assert "unknown mechanism" in captured.err
        assert captured.out == ""  # no per-request error lines

    @pytest.mark.parametrize(
        "flags, fragment",
        [
            (["--epsilon", "-1"], "epsilon"),
            (["--window", "0"], "window"),
            (["--confidence", "1.5"], "confidence"),
            (["--oracle", "nope"], "oracle"),
            (["--postprocess", "nope"], "postprocess"),
            (["--capacity", "-3"], "capacity"),
        ],
    )
    def test_bad_numeric_config_fails_fast(
        self, capsys, monkeypatch, flags, fragment
    ):
        self._feed(monkeypatch, self._requests(2))
        assert main(self._serve(flags)) == 2
        captured = capsys.readouterr()
        assert fragment in captured.err
        assert captured.out == ""  # never one-error-line-per-request

    def test_observe_failure_is_fatal_not_silent(self, capsys, monkeypatch):
        # An error raised inside session ingest lands *after* stream.push
        # has advanced the stream, leaving the pair desynchronized — the
        # server must stop with rc 2 instead of emitting error lines
        # forever and exiting 0.
        from repro.engine.session import StreamSession
        from repro.exceptions import PopulationExhaustedError

        real_observe_many = StreamSession.observe_many

        def flaky_observe_many(self, t0=None, n=None, **kwargs):
            if t0 == 1:
                raise PopulationExhaustedError("no users left")
            return real_observe_many(self, t0, n, **kwargs)

        monkeypatch.setattr(StreamSession, "observe_many", flaky_observe_many)
        self._feed(monkeypatch, self._requests(3))
        code = main(self._serve())
        captured = capsys.readouterr()
        assert code == 2
        assert "no longer consistent" in captured.err
        lines = [json.loads(raw) for raw in captured.out.splitlines()]
        assert lines[0]["t"] == 0                 # first ingest fine
        assert lines[1]["fatal"] is True          # then fatal, then stop
        assert len(lines) == 2

    def test_wrong_length_snapshot_is_recoverable(self, capsys, monkeypatch):
        requests = self._requests(2)
        requests.insert(1, {"op": "ingest", "values": [0, 1]})  # wrong n
        requests.append({"op": "summary"})
        self._feed(monkeypatch, requests)
        assert main(self._serve()) == 0
        lines = [json.loads(raw) for raw in capsys.readouterr().out.splitlines()]
        assert "error" in lines[1]            # rejected before any advance
        assert lines[2]["t"] == 1             # ingestion continues in sync
        assert lines[3]["steps"] == 2


class TestStreamChunked:
    """`repro stream --chunk N` buffers N timestamps per engine call;
    the emitted lines must be identical to the per-step run."""

    @staticmethod
    def _args(extra=()):
        return [
            "stream", "--method", "LBU", "--domain-size", "3",
            "--epsilon", "1", "--window", "4", "--seed", "7", *extra,
        ]

    def _run(self, capsys, monkeypatch, extra=(), n_lines=23):
        TestStream._feed(
            monkeypatch, TestStream._snapshot_lines(n_lines=n_lines)
        )
        code = main(self._args(extra))
        captured = capsys.readouterr()
        assert code == 0
        return captured.out, captured.err

    def test_chunked_output_identical(self, capsys, monkeypatch):
        out_loop, err_loop = self._run(capsys, monkeypatch)
        out_chunk, err_chunk = self._run(
            capsys, monkeypatch, extra=("--chunk", "8")
        )
        assert out_chunk == out_loop
        assert err_chunk == err_loop

    def test_chunk_larger_than_input(self, capsys, monkeypatch):
        out_loop, _ = self._run(capsys, monkeypatch)
        out_chunk, _ = self._run(capsys, monkeypatch, extra=("--chunk", "999"))
        assert out_chunk == out_loop

    def test_chunk_with_max_steps(self, capsys, monkeypatch):
        out_loop, _ = self._run(
            capsys, monkeypatch, extra=("--max-steps", "10")
        )
        out_chunk, _ = self._run(
            capsys, monkeypatch, extra=("--chunk", "8", "--max-steps", "10")
        )
        assert out_chunk == out_loop
        assert len(out_chunk.splitlines()) == 10

    def test_invalid_chunk_is_graceful(self, capsys, monkeypatch):
        TestStream._feed(monkeypatch, TestStream._snapshot_lines())
        assert main(self._args(("--chunk", "0"))) == 2
        assert "chunk" in capsys.readouterr().err


class TestServeChunked:
    """`repro serve --chunk N` buffers consecutive ingests and flushes
    before answering queries; answer lines keep request order."""

    def _run(self, capsys, monkeypatch, requests, extra=()):
        TestServe._feed(monkeypatch, requests)
        code = main(TestServe._serve(extra))
        out = capsys.readouterr().out
        return code, [json.loads(raw) for raw in out.splitlines()]

    def test_chunked_answers_identical(self, capsys, monkeypatch):
        requests = TestServe._requests(n_steps=13) + [
            {"op": "topk", "k": 2},
            {"op": "summary"},
        ]
        code, loop = self._run(capsys, monkeypatch, requests)
        assert code == 0
        code, chunk = self._run(
            capsys, monkeypatch, requests, extra=("--chunk", "5")
        )
        assert code == 0
        assert chunk == loop

    def test_query_flushes_pending_ingests(self, capsys, monkeypatch):
        requests = TestServe._requests(n_steps=3) + [{"op": "summary"}]
        code, lines = self._run(
            capsys, monkeypatch, requests, extra=("--chunk", "100")
        )
        assert code == 0
        # All three buffered ingests answered (in order) before the query.
        assert [obj.get("t") for obj in lines[:3]] == [0, 1, 2]
        assert lines[3]["steps"] == 3

    def test_eof_flushes_partial_chunk(self, capsys, monkeypatch):
        code, lines = self._run(
            capsys,
            monkeypatch,
            TestServe._requests(n_steps=7),
            extra=("--chunk", "4"),
        )
        assert code == 0
        assert [obj["t"] for obj in lines] == list(range(7))

    def test_bad_request_keeps_order(self, capsys, monkeypatch):
        requests = TestServe._requests(n_steps=2)
        requests.insert(1, {"op": "bogus"})
        code, lines = self._run(
            capsys, monkeypatch, requests, extra=("--chunk", "10")
        )
        assert code == 0
        assert lines[0]["t"] == 0
        assert "error" in lines[1]
        assert lines[2]["t"] == 1
