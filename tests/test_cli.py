"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRun:
    def test_basic_run(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "LPA",
                "--dataset",
                "LNS",
                "--size",
                "smoke",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "LPA on LNS" in out
        assert "MRE" in out
        assert "CFPU" in out
        assert "max window spend" in out

    def test_saves_artifacts(self, capsys, tmp_path):
        json_path = tmp_path / "session.json"
        csv_path = tmp_path / "session.csv"
        code = main(
            [
                "run",
                "--method",
                "LBU",
                "--dataset",
                "Sin",
                "--size",
                "smoke",
                "--save-json",
                str(json_path),
                "--save-csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert json.loads(json_path.read_text())["mechanism"] == "LBU"
        assert csv_path.read_text().startswith("t,strategy")

    def test_unknown_method_is_graceful(self, capsys):
        code = main(["run", "--method", "NOPE", "--size", "smoke"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_dataset_is_graceful(self, capsys):
        code = main(
            ["run", "--method", "LBU", "--dataset", "NOPE", "--size", "smoke"]
        )
        assert code == 2


class TestListing:
    def test_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"):
            assert name in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("LNS", "Taxi", "Taobao"):
            assert name in out
        assert "200000" in out  # paper tier visible


class TestFigureAndTable:
    def test_fig7_smoke(self, capsys):
        assert main(["figure", "fig7", "--size", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "AUC" in out

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--size", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "eps=1, w=20" in out
        assert "measured/paper" in out


class TestStream:
    @staticmethod
    def _feed(monkeypatch, lines):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO("\n".join(lines) + "\n"))

    @staticmethod
    def _snapshot_lines(n_lines=12, n_users=60, domain=3, sep=" "):
        import numpy as np

        rng = np.random.default_rng(5)
        return [
            sep.join(str(v) for v in rng.integers(0, domain, size=n_users))
            for _ in range(n_lines)
        ]

    def test_online_session_from_stdin(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._snapshot_lines())
        code = main(
            [
                "stream",
                "--method",
                "LBD",
                "--domain-size",
                "3",
                "--epsilon",
                "1",
                "--window",
                "4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        rows = [line for line in captured.out.splitlines() if line]
        assert len(rows) == 12
        first = rows[0].split(",")
        assert first[0] == "0"
        assert first[1] in ("publish", "approximate", "nullified")
        assert len(first) == 2 + 3  # t, strategy, d release values
        assert "online session: 12 steps" in captured.err
        assert "max window spend" in captured.err

    def test_trace_metrics_and_comma_input(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._snapshot_lines(sep=","))
        code = main(
            [
                "stream",
                "--method",
                "LBU",
                "--domain-size",
                "3",
                "--trace",
                "--emit",
                "none",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert "MRE" in captured.err
        assert "MSE" in captured.err

    def test_max_steps_truncates(self, capsys, monkeypatch):
        self._feed(monkeypatch, self._snapshot_lines(n_lines=20))
        code = main(
            [
                "stream",
                "--method",
                "LPU",
                "--domain-size",
                "3",
                "--max-steps",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert len([line for line in captured.out.splitlines() if line]) == 5
        assert "5 steps" in captured.err

    def test_file_input(self, capsys, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("\n".join(self._snapshot_lines(n_lines=4)) + "\n")
        code = main(
            [
                "stream",
                "--method",
                "LBU",
                "--domain-size",
                "3",
                "--input",
                str(path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert len([line for line in captured.out.splitlines() if line]) == 4

    def test_empty_input_is_error(self, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(""))
        code = main(["stream", "--method", "LBU", "--domain-size", "3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no input" in captured.err

    def test_bad_values_are_graceful(self, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO("0 1 9\n"))
        code = main(["stream", "--method", "LBU", "--domain-size", "3"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("line", ["not a number", "0.5 1 2", "1 2 x"])
    def test_non_integer_input_is_graceful(self, capsys, monkeypatch, line):
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(line + "\n"))
        code = main(["stream", "--method", "LBU", "--domain-size", "3"])
        assert code == 2
        assert "integer values" in capsys.readouterr().err
