"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRun:
    def test_basic_run(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "LPA",
                "--dataset",
                "LNS",
                "--size",
                "smoke",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "LPA on LNS" in out
        assert "MRE" in out
        assert "CFPU" in out
        assert "max window spend" in out

    def test_saves_artifacts(self, capsys, tmp_path):
        json_path = tmp_path / "session.json"
        csv_path = tmp_path / "session.csv"
        code = main(
            [
                "run",
                "--method",
                "LBU",
                "--dataset",
                "Sin",
                "--size",
                "smoke",
                "--save-json",
                str(json_path),
                "--save-csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert json.loads(json_path.read_text())["mechanism"] == "LBU"
        assert csv_path.read_text().startswith("t,strategy")

    def test_unknown_method_is_graceful(self, capsys):
        code = main(["run", "--method", "NOPE", "--size", "smoke"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_dataset_is_graceful(self, capsys):
        code = main(
            ["run", "--method", "LBU", "--dataset", "NOPE", "--size", "smoke"]
        )
        assert code == 2


class TestListing:
    def test_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"):
            assert name in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("LNS", "Taxi", "Taobao"):
            assert name in out
        assert "200000" in out  # paper tier visible


class TestFigureAndTable:
    def test_fig7_smoke(self, capsys):
        assert main(["figure", "fig7", "--size", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "AUC" in out

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--size", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "eps=1, w=20" in out
        assert "measured/paper" in out
