"""Tests for session/series serialization."""

import csv
import json

import numpy as np
import pytest

from repro.engine import run_stream
from repro.exceptions import InvalidParameterError
from repro.io import (
    load_session,
    save_session,
    series_to_csv,
    session_from_dict,
    session_to_csv,
    session_to_dict,
)


@pytest.fixture
def session(small_binary_stream):
    return run_stream("LPA", small_binary_stream, epsilon=1.0, window=5, seed=3)


class TestJSONRoundTrip:
    def test_dict_round_trip(self, session):
        restored = session_from_dict(session_to_dict(session))
        assert restored.mechanism == session.mechanism
        assert restored.epsilon == session.epsilon
        assert np.allclose(restored.releases, session.releases)
        assert np.allclose(restored.true_frequencies, session.true_frequencies)
        assert restored.total_reports == session.total_reports
        assert restored.cfpu == pytest.approx(session.cfpu)

    def test_records_preserved(self, session):
        restored = session_from_dict(session_to_dict(session))
        assert len(restored.records) == len(session.records)
        for a, b in zip(restored.records, session.records):
            assert a.t == b.t
            assert a.strategy == b.strategy
            assert a.reports == b.reports
            assert (np.isnan(a.dis) and np.isnan(b.dis)) or a.dis == b.dis

    def test_file_round_trip(self, session, tmp_path):
        path = tmp_path / "nested" / "session.json"
        save_session(session, path)
        restored = load_session(path)
        assert np.allclose(restored.releases, session.releases)

    def test_json_is_valid(self, session, tmp_path):
        path = tmp_path / "session.json"
        save_session(session, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1

    def test_version_check(self, session):
        payload = session_to_dict(session)
        payload["format_version"] = 99
        with pytest.raises(InvalidParameterError):
            session_from_dict(payload)


class TestCSVExport:
    def test_session_csv_shape(self, session, tmp_path):
        path = tmp_path / "session.csv"
        session_to_csv(session, path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == session.horizon + 1  # header + T rows
        assert rows[0][:2] == ["t", "strategy"]
        assert len(rows[1]) == 5 + 2 * session.domain_size

    def test_csv_values_match(self, session, tmp_path):
        path = tmp_path / "session.csv"
        session_to_csv(session, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        t = 3
        assert float(rows[t]["release_1"]) == pytest.approx(
            session.releases[t, 1], rel=1e-6
        )

    def test_series_csv(self, tmp_path):
        series = {"LNS": {"LBU": {0.5: 1.2, 1.0: 0.8}}}
        path = tmp_path / "series.csv"
        series_to_csv(series, path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["panel", "method", "x", "value"]
        assert rows[1] == ["LNS", "LBU", "0.5", "1.2"]
        assert len(rows) == 3


class TestArtifactValidation:
    """Legacy, truncated, and corrupt artifacts must fail with a clear
    InvalidParameterError — never a KeyError escaping the loader."""

    def test_legacy_artifact_without_version_rejected(self, session):
        payload = session_to_dict(session)
        del payload["format_version"]
        with pytest.raises(InvalidParameterError, match="format version"):
            session_from_dict(payload)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(InvalidParameterError, match="JSON object"):
            session_from_dict([1, 2, 3])

    @pytest.mark.parametrize(
        "field",
        ["mechanism", "releases", "records", "total_reports", "window"],
    )
    def test_missing_field_names_the_field(self, session, field):
        payload = session_to_dict(session)
        del payload[field]
        with pytest.raises(InvalidParameterError, match=field):
            session_from_dict(payload)

    def test_missing_record_field_rejected(self, session):
        payload = session_to_dict(session)
        del payload["records"][3]["strategy"]
        with pytest.raises(InvalidParameterError, match="strategy"):
            session_from_dict(payload)

    def test_malformed_field_type_rejected(self, session):
        payload = session_to_dict(session)
        payload["epsilon"] = "not-a-number"
        with pytest.raises(InvalidParameterError, match="malformed"):
            session_from_dict(payload)

    def test_record_index_out_of_bounds_rejected(self, session):
        payload = session_to_dict(session)
        payload["records"][0]["t"] = len(payload["releases"]) + 10
        with pytest.raises(InvalidParameterError, match="malformed"):
            session_from_dict(payload)

    def test_truncated_file_rejected(self, session, tmp_path):
        path = tmp_path / "session.json"
        save_session(session, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(InvalidParameterError, match="not valid JSON"):
            load_session(path)

    def test_version_skewed_file_rejected(self, session, tmp_path):
        path = tmp_path / "session.json"
        payload = session_to_dict(session)
        payload["format_version"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(InvalidParameterError, match="version 0"):
            load_session(path)


class TestQueryEngineFromArtifact:
    """QueryEngine.from_result routes dicts and paths through the
    validated loaders."""

    def test_from_path(self, session, tmp_path):
        from repro.query import QueryEngine

        path = tmp_path / "session.json"
        save_session(session, path)
        direct = QueryEngine.from_result(session)
        via_path = QueryEngine.from_result(path)
        t = session.horizon - 1
        assert via_path.point(0, t=t).estimate == pytest.approx(
            direct.point(0, t=t).estimate
        )

    def test_from_dict(self, session):
        from repro.query import QueryEngine

        engine = QueryEngine.from_result(session_to_dict(session))
        assert engine.point(0).estimate == pytest.approx(
            QueryEngine.from_result(session).point(0).estimate
        )

    def test_from_corrupt_dict_raises_clear_error(self, session):
        from repro.query import QueryEngine

        payload = session_to_dict(session)
        del payload["records"]
        with pytest.raises(InvalidParameterError, match="records"):
            QueryEngine.from_result(payload)

    def test_from_version_skewed_dict_raises(self, session):
        from repro.query import QueryEngine

        payload = session_to_dict(session)
        payload["format_version"] = 99
        with pytest.raises(InvalidParameterError, match="format version"):
            QueryEngine.from_result(payload)

    def test_from_truncated_file_raises(self, session, tmp_path):
        from repro.query import QueryEngine

        path = tmp_path / "session.json"
        path.write_text('{"format_version": 1, "mech')
        with pytest.raises(InvalidParameterError, match="not valid JSON"):
            QueryEngine.from_result(path)
