"""Docs CI: link checker + doctest runner for fenced quickstart snippets.

Two checks keep the documentation from rotting:

* **Links** — every relative markdown link (``[text](path)``) in the
  repo's top-level and ``docs/`` markdown files must point at a file or
  directory that exists.  External (``http(s)://``, ``mailto:``) and
  in-page (``#anchor``) links are skipped.
* **Doctests** — every fenced ```` ```python ```` block whose first
  non-blank line starts with ``>>>`` is executed with :mod:`doctest`.
  Blocks without ``>>>`` prompts are illustrative pseudo-code and are
  not executed, so keep runnable quickstarts in doctest form and sized
  for seconds.

Run as a script (CI does) or through ``tests/docs/test_docs.py``::

    python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # script mode without an installed package
    sys.path.insert(0, str(REPO_SRC))

#: Markdown sources covered by both checks.
DOC_DIRS = (REPO_ROOT, REPO_ROOT / "docs")

#: ``[text](target)`` — target captured without surrounding whitespace.
_LINK = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)\s*\)")

#: Fenced python blocks (``python`` info string, any indentation of the fence).
_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")


def _rel(path: Path) -> str:
    """Repo-relative display path (absolute when outside the repo)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def markdown_files() -> List[Path]:
    """Top-level and docs/ markdown files, sorted for stable reports."""
    files: List[Path] = []
    for directory in DOC_DIRS:
        if directory.is_dir():
            files.extend(sorted(directory.glob("*.md")))
    return files


def check_links(files: Iterable[Path]) -> List[str]:
    """Return one problem string per broken relative link."""
    problems: List[str] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{_rel(path)}: broken link -> {target}"
                )
    return problems


def doctest_blocks(path: Path) -> List[Tuple[int, str]]:
    """``(line_number, source)`` for each runnable fenced block in a file."""
    text = path.read_text(encoding="utf-8")
    blocks: List[Tuple[int, str]] = []
    for match in _FENCE.finditer(text):
        body = match.group(1)
        stripped = body.lstrip("\n")
        if not stripped.startswith(">>>"):
            continue  # illustrative snippet, not a doctest
        line = text.count("\n", 0, match.start()) + 1
        blocks.append((line, body))
    return blocks


def run_doctests(files: Iterable[Path]) -> Tuple[List[str], int]:
    """Execute every runnable block; return (problems, blocks_run)."""
    parser = doctest.DocTestParser()
    problems: List[str] = []
    total = 0
    for path in files:
        for line, source in doctest_blocks(path):
            total += 1
            name = f"{_rel(path)}:{line}"
            test = parser.get_doctest(
                source, {"__name__": "__docs__"}, name, str(path), line
            )
            runner = doctest.DocTestRunner(
                optionflags=doctest.ELLIPSIS, verbose=False
            )
            report = []
            runner.run(test, out=report.append)
            if runner.failures:
                problems.append(
                    f"{name}: {runner.failures} doctest failure(s)\n"
                    + "".join(report)
                )
    return problems, total


def main() -> int:
    files = markdown_files()
    link_problems = check_links(files)
    doctest_problems, blocks = run_doctests(files)
    for problem in link_problems + doctest_problems:
        print(problem, file=sys.stderr)
    checked_links = sum(
        1 for f in files for _ in _LINK.finditer(f.read_text(encoding="utf-8"))
    )
    print(
        f"docs check: {len(files)} files, {checked_links} links, "
        f"{blocks} doctest blocks -> "
        f"{len(link_problems) + len(doctest_problems)} problem(s)"
    )
    return 1 if (link_problems or doctest_problems) else 0


if __name__ == "__main__":
    sys.exit(main())
