"""Crash-injection harness for durable ``repro serve`` sessions.

The exactly-once resume contract of ``repro serve --state-dir`` is a
strong claim: SIGKILL the server at *any* point — between chunks, mid
``observe_many`` chunk, even mid WAL write — restart it with the
replayed feed, and the union of what it released before and after the
crash is **byte-for-byte** what an uninterrupted server would have
released.  This harness proves the claim empirically:

1. generate a deterministic ingest feed (pure function of ``--seed``)
   followed by a fixed tail of queries;
2. run one uninterrupted durable server — the reference: its final
   query answers, summary and committed WAL rows;
3. for each of ``--kills`` trials, start a fresh durable server, feed a
   seeded random prefix of the ingest lines, SIGKILL it after a seeded
   random number of acks (so the kill lands at arbitrary internal
   points, including mid-chunk and mid-fsync), then restart it with the
   *full* feed and let it run to EOF;
4. assert the trial's final answers, summary (accountant spend, report
   counts) and complete WAL equal the reference's exactly.

Mid-chunk coverage comes for free: with ``--chunk N > 1`` the killed
prefix usually ends inside a buffered chunk, and the ack-triggered kill
races the server's flush loop, so across 25 trials the process dies in
every phase of chunk ingestion.

Run standalone (CI does) or import :func:`run_crashtest` from tests::

    python tools/crashtest.py --kills 25 --seed 0 --out report.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"


def make_feed(
    seed: int,
    steps: int,
    n_users: int,
    domain_size: int,
) -> List[str]:
    """Deterministic ingest feed + fixed query tail (one line each)."""
    rng = np.random.default_rng(seed)
    lines = [
        json.dumps(
            {
                "op": "ingest",
                "values": rng.integers(0, domain_size, size=n_users).tolist(),
            }
        )
        for _ in range(steps)
    ]
    lines += [
        json.dumps({"op": "topk", "k": 3}),
        json.dumps({"op": "point", "item": 0}),
        json.dumps({"op": "sliding", "t0": steps - 10, "t1": steps - 1,
                    "agg": "sum", "item": 1}),
        json.dumps({"op": "summary"}),
    ]
    return lines


def serve_command(args: argparse.Namespace, state_dir: Path) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--method",
        args.method,
        "--oracle",
        args.oracle,
        "--domain-size",
        str(args.domain_size),
        "--epsilon",
        str(args.epsilon),
        "--window",
        str(args.window),
        "--seed",
        str(args.session_seed),
        "--chunk",
        str(args.chunk),
        "--capacity",
        "0",
        "--state-dir",
        str(state_dir),
        "--checkpoint-every",
        str(args.checkpoint_every),
    ]


def _env() -> dict:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return env


def run_to_completion(cmd: Sequence[str], feed: Sequence[str]) -> List[str]:
    """Run the server over the whole feed; return its stdout lines."""
    proc = subprocess.run(
        list(cmd),
        input="\n".join(feed) + "\n",
        capture_output=True,
        text=True,
        env=_env(),
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"serve exited {proc.returncode}: {proc.stderr.strip()}"
        )
    return proc.stdout.strip().split("\n") if proc.stdout.strip() else []


def kill_after(
    cmd: Sequence[str],
    feed: Sequence[str],
    feed_lines: int,
    ack_trigger: int,
    timeout: float = 30.0,
) -> int:
    """Feed ``feed_lines`` lines, SIGKILL after ``ack_trigger`` acks.

    The ack counter runs in a reader thread racing the server's flush
    loop, so the kill lands at an arbitrary point of chunk processing —
    possibly mid ``observe_many``, possibly between WAL append and
    commit.  An ``ack_trigger`` of 0 kills right after the last fed
    line, racing the buffered (not yet flushed) chunk.  Returns the
    number of acks observed before the kill.
    """
    proc = subprocess.Popen(
        list(cmd),
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_env(),
    )
    acks = 0
    fired = threading.Event()

    def reap() -> None:
        nonlocal acks
        assert proc.stdout is not None
        for _ in proc.stdout:
            acks += 1
            if ack_trigger > 0 and acks >= ack_trigger:
                proc.kill()
                fired.set()
                return
        fired.set()

    reader = threading.Thread(target=reap, daemon=True)
    reader.start()
    try:
        assert proc.stdin is not None
        for line in feed[:feed_lines]:
            proc.stdin.write(line + "\n")
            proc.stdin.flush()
    except (BrokenPipeError, OSError):
        pass  # killed while we were still feeding — that's the point
    # Do NOT close stdin on the un-killed path: EOF would let the server
    # finish cleanly.  Wait for the trigger, then make sure it is dead.
    if ack_trigger <= 0:
        time.sleep(0.05)  # let the fed lines land mid-processing
        proc.kill()
    elif not fired.wait(timeout):
        proc.kill()
    deadline = time.monotonic() + timeout
    while proc.poll() is None and time.monotonic() < deadline:
        time.sleep(0.01)
    if proc.poll() is None:  # pragma: no cover - defensive
        proc.terminate()
        proc.wait(timeout=10)
    if proc.stdin is not None:
        try:
            proc.stdin.close()
        except OSError:
            pass
    reader.join(timeout=10)
    return acks


def read_wal_rows(state_dir: Path) -> List[dict]:
    """Committed release rows of a state dir's WAL."""
    sys.path.insert(0, str(REPO_SRC))
    try:
        from repro.persist import replay_wal
    finally:
        sys.path.pop(0)
    rows, _ = replay_wal(state_dir / "releases.wal")
    return rows


def tail_answers(output: List[str], n_queries: int) -> List[str]:
    """The last ``n_queries`` output lines — the query-tail answers."""
    return output[-n_queries:] if n_queries else []


def run_crashtest(
    kills: int = 25,
    seed: int = 0,
    steps: int = 60,
    n_users: int = 60,
    domain_size: int = 4,
    method: str = "LBD",
    oracle: str = "grr",
    epsilon: float = 1.0,
    window: int = 6,
    session_seed: int = 7,
    chunk: int = 4,
    checkpoint_every: int = 2,
    workdir: Optional[Path] = None,
) -> dict:
    """Run the full harness; return a JSON-able report.

    The report's ``trials`` list carries one entry per kill with the
    randomized kill coordinates and a boolean per assertion; ``passed``
    is the conjunction over all trials.
    """
    import tempfile

    args = argparse.Namespace(
        method=method,
        oracle=oracle,
        domain_size=domain_size,
        epsilon=epsilon,
        window=window,
        session_seed=session_seed,
        chunk=chunk,
        checkpoint_every=checkpoint_every,
    )
    feed = make_feed(seed, steps, n_users, domain_size)
    n_queries = 4
    rng = np.random.default_rng(seed + 1)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmp_path = Path(tmp)
        ref_state = tmp_path / "ref"
        ref_out = run_to_completion(serve_command(args, ref_state), feed)
        ref_answers = tail_answers(ref_out, n_queries)
        ref_wal = read_wal_rows(ref_state)
        if len(ref_wal) != steps:
            raise RuntimeError(
                f"reference WAL has {len(ref_wal)} rows for {steps} steps"
            )

        trials = []
        for trial in range(kills):
            # Kill coordinates: how many ingest lines the first process
            # is fed, and after how many acks the SIGKILL fires.  Both
            # seeded — the CI matrix is reproducible.  Acks only arrive
            # on full-chunk flushes; when none can, the kill races the
            # buffered chunk instead of a trigger that never fires.
            feed_lines = int(rng.integers(1, steps + 1))
            max_acks = (feed_lines // chunk) * chunk
            ack_trigger = (
                int(rng.integers(1, max_acks + 1)) if max_acks else 0
            )
            state = tmp_path / f"trial{trial}"
            acks = kill_after(
                serve_command(args, state), feed, feed_lines, ack_trigger
            )
            resumed_out = run_to_completion(serve_command(args, state), feed)
            answers = tail_answers(resumed_out, n_queries)
            wal = read_wal_rows(state)
            skipped = sum(1 for line in resumed_out if '"skipped": true' in line)
            duplicates = len(wal) - len({row["t"] for row in wal})
            entry = {
                "trial": trial,
                "feed_lines": feed_lines,
                "ack_trigger": ack_trigger,
                "acks_before_kill": acks,
                "skipped_on_resume": skipped,
                "answers_match": answers == ref_answers,
                "wal_matches": wal == ref_wal,
                "no_duplicate_ingests": duplicates == 0,
            }
            entry["passed"] = (
                entry["answers_match"]
                and entry["wal_matches"]
                and entry["no_duplicate_ingests"]
            )
            trials.append(entry)

    return {
        "config": {
            "kills": kills,
            "seed": seed,
            "steps": steps,
            "n_users": n_users,
            "domain_size": domain_size,
            "method": method,
            "oracle": oracle,
            "epsilon": epsilon,
            "window": window,
            "session_seed": session_seed,
            "chunk": chunk,
            "checkpoint_every": checkpoint_every,
        },
        "reference_answers": ref_answers,
        "trials": trials,
        "passed": all(t["passed"] for t in trials),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kills", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--n-users", type=int, default=60)
    parser.add_argument("--domain-size", type=int, default=4)
    parser.add_argument("--method", default="LBD")
    parser.add_argument("--oracle", default="grr")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--window", type=int, default=6)
    parser.add_argument("--session-seed", type=int, default=7)
    parser.add_argument("--chunk", type=int, default=4)
    parser.add_argument("--checkpoint-every", type=int, default=2)
    parser.add_argument("--out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    report = run_crashtest(
        kills=args.kills,
        seed=args.seed,
        steps=args.steps,
        n_users=args.n_users,
        domain_size=args.domain_size,
        method=args.method,
        oracle=args.oracle,
        epsilon=args.epsilon,
        window=args.window,
        session_seed=args.session_seed,
        chunk=args.chunk,
        checkpoint_every=args.checkpoint_every,
    )
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2))
    failed = [t for t in report["trials"] if not t["passed"]]
    for t in report["trials"]:
        status = "ok" if t["passed"] else "FAIL"
        print(
            f"trial {t['trial']:3d}: fed {t['feed_lines']:3d} lines, "
            f"killed after {t['acks_before_kill']:3d} acks, "
            f"skipped {t['skipped_on_resume']:3d} on resume -> {status}"
        )
    print(
        f"{len(report['trials']) - len(failed)}/{len(report['trials'])} "
        f"kill/restore trials bit-identical to the uninterrupted run"
    )
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
