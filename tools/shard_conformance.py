"""Black-box conformance checker for the sharded serving tier.

Replays one seeded stream through every requested shard count and
enforces the two-tier contract of ``docs/SERVING.md``:

1. **Count exactness** — for every frequency oracle and every shard
   count, aggregating each shard's LDP reports separately and merging
   the support counts reproduces the single-process aggregation of the
   whole population *bit for bit* (frequencies, variance, supports).
2. **Solo exactness** — a 1-shard :class:`repro.serving.ShardedSession`
   is bit-identical to a plain :class:`repro.engine.StreamSession`
   (releases, variances, strategies at every timestamp).
3. **Statistical conformance** — at K > 1 the merged releases match the
   solo run within the propagated deviation ``z * sqrt(var_merged +
   var_solo)`` cell by cell (independent unbiased estimates of the same
   stream).
4. **Server exactness** (``--mode server`` / ``both``) — a live
   ``repro serve --shards K`` subprocess, fed the same stream over its
   socket, answers every ingest ack and every point/topk/range/sliding/
   summary query bit-identically to the serial reference session.

Writes a JSON report and exits non-zero on any violation::

    python tools/shard_conformance.py --shards 1 2 4 8 --mode both \
        --out shard_conformance.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.engine.session import StreamSession  # noqa: E402
from repro.freq_oracles import get_oracle  # noqa: E402
from repro.query import ReleaseStore  # noqa: E402
from repro.serving import ShardedSession  # noqa: E402
from repro.streams.online import OnlineStream  # noqa: E402

ORACLES = ["grr", "oue", "sue", "olh", "hr"]


def make_feed(steps: int, n_users: int, domain: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, domain, size=(steps, n_users), dtype=np.int64)


# ----------------------------------------------------------------------
# Check 1: shard-merged collection counts are exact for all oracles.
# ----------------------------------------------------------------------
def check_count_exactness(shards: List[int], seed: int) -> dict:
    from repro.engine.collector import Collector

    rng = np.random.default_rng(seed)
    failures = []
    trials = 0
    for oracle_name in ORACLES:
        oracle = get_oracle(oracle_name)
        for k in [s for s in shards if s > 1] or [2]:
            d = int(rng.integers(4, 32))
            n = max(8 * k, int(rng.integers(100, 400)))
            epsilon = float(rng.choice([0.5, 1.0, 2.0]))
            values = rng.integers(0, d, size=n)
            reports = oracle.perturb(values, d, epsilon, rng)
            whole = oracle.aggregate(reports, d, epsilon)
            perm = rng.permutation(n)
            parts = [
                oracle.aggregate(reports[idx], d, epsilon)
                for idx in np.array_split(perm, k)
            ]
            merged = Collector.merge(parts, oracle_name)
            trials += 1
            exact = (
                merged.n_reports == whole.n_reports
                and np.array_equal(merged.frequencies, whole.frequencies)
                and merged.variance == whole.variance
                and np.array_equal(merged.supports, whole.supports)
            )
            if not exact:
                failures.append(
                    {"oracle": oracle_name, "k": k, "d": d, "n": n}
                )
    return {
        "check": "count_exactness",
        "trials": trials,
        "failures": failures,
        "ok": not failures,
    }


# ----------------------------------------------------------------------
# Checks 2+3: serial sharded sessions vs the solo session.
# ----------------------------------------------------------------------
def _solo_store(args, block) -> ReleaseStore:
    stream = OnlineStream(
        n_users=args.n_users,
        domain_size=args.domain_size,
        retain=max(4, args.chunk),
    )
    store = ReleaseStore(args.domain_size, capacity=None)
    session = StreamSession(
        args.method,
        stream,
        epsilon=args.epsilon,
        window=args.window,
        oracle=args.oracle,
        seed=args.seed,
        record_trace=False,
        store=store,
    ).start()
    for i in range(0, block.shape[0], args.chunk):
        part = block[i : i + args.chunk]
        for row in part:
            stream.push(row)
        session.observe_many(i, part.shape[0])
    return store


def _serial_session(args, block, k: int) -> ShardedSession:
    session = ShardedSession(
        args.method,
        n_users=args.n_users,
        domain_size=args.domain_size,
        epsilon=args.epsilon,
        window=args.window,
        num_shards=k,
        oracle=args.oracle,
        seed=args.seed,
        capacity=None,
        retain=max(4, args.chunk),
    ).start()
    for i in range(0, block.shape[0], args.chunk):
        session.ingest_many(block[i : i + args.chunk])
    return session


def check_serial(args, block, solo: ReleaseStore, k: int) -> dict:
    merged = _serial_session(args, block, k).merged
    steps = block.shape[0]
    if k == 1:
        mismatches = [
            t
            for t in range(steps)
            if not np.array_equal(merged.release_at(t), solo.release_at(t))
            or merged.variance_at(t) != solo.variance_at(t)
            or merged.strategy_at(t) != solo.strategy_at(t)
        ]
        return {
            "check": "solo_exactness",
            "shards": 1,
            "steps": steps,
            "mismatched_timestamps": mismatches,
            "ok": not mismatches,
        }
    worst = 0.0
    violations = []
    for t in range(steps):
        tolerance = args.z * float(
            np.sqrt(
                max(merged.variance_at(t), 0.0)
                + max(solo.variance_at(t), 0.0)
            )
        )
        gap = float(
            np.abs(merged.release_at(t) - solo.release_at(t)).max()
        )
        ratio = gap / tolerance if tolerance > 0 else float("inf")
        worst = max(worst, ratio)
        if gap > tolerance:
            violations.append({"t": t, "gap": gap, "tolerance": tolerance})
    return {
        "check": "statistical_conformance",
        "shards": k,
        "steps": steps,
        "z": args.z,
        "worst_gap_over_tolerance": worst,
        "violations": violations,
        "ok": not violations,
    }


# ----------------------------------------------------------------------
# Check 4: the live socket server vs the serial reference.
# ----------------------------------------------------------------------
class _Client:
    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        self.rfile = self.sock.makefile("r", encoding="utf-8")
        self.wfile = self.sock.makefile("w", encoding="utf-8")

    def ask(self, request: dict) -> dict:
        self.wfile.write(json.dumps(request) + "\n")
        self.wfile.flush()
        line = self.rfile.readline()
        if not line:
            raise RuntimeError("server closed the connection")
        return json.loads(line)

    def close(self):
        self.sock.close()


def _queries(args) -> List[dict]:
    steps, d = args.steps, args.domain_size
    requests = [{"op": "point", "item": item} for item in range(d)]
    requests += [
        {"op": "point", "item": 0, "t": steps // 2},
        {"op": "topk", "k": min(5, d)},
        {"op": "range", "lo": 0, "hi": d // 2},
        {
            "op": "sliding",
            "t0": max(0, steps - 6),
            "t1": steps - 1,
            "agg": "sum",
            "item": 1,
        },
    ]
    return requests


def _serial_answer(serial: ShardedSession, request: dict) -> dict:
    engine = serial.engine
    op = request["op"]
    t = request.get("t")
    if op == "point":
        return {
            "op": op,
            "item": request["item"],
            **engine.point(request["item"], t=t).as_dict(),
        }
    if op == "topk":
        return {
            "op": op,
            "items": [e.as_dict() for e in engine.topk(request["k"], t=t)],
        }
    if op == "range":
        return {
            "op": op,
            "lo": request["lo"],
            "hi": request["hi"],
            **engine.range_count(request["lo"], request["hi"], t=t).as_dict(),
        }
    if op == "sliding":
        return {
            "op": op,
            "item": request["item"],
            **engine.sliding(
                request["t0"], request["t1"], request["agg"],
                item=request["item"],
            ).as_dict(),
        }
    raise ValueError(op)


def check_server(args, block, k: int) -> dict:
    serial = _serial_session(args, block, k)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--shards", str(k), "--n-users", str(args.n_users),
        "--method", args.method, "--oracle", args.oracle,
        "--domain-size", str(args.domain_size),
        "--epsilon", str(args.epsilon), "--window", str(args.window),
        "--seed", str(args.seed), "--chunk", str(args.chunk),
        "--capacity", "0",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    mismatches: List[dict] = []
    try:
        hello = json.loads(proc.stdout.readline() or "{}")
        if hello.get("event") != "listening":
            raise RuntimeError(
                f"server failed to start: {proc.stderr.read()}"
            )
        client = _Client(int(hello["port"]))
        try:
            for t in range(args.steps):
                ack = client.ask(
                    {"op": "ingest", "values": block[t].tolist()}
                )
                want = serial.merged.strategy_at(t)
                if ack.get("t") != t or ack.get("strategy") != want:
                    mismatches.append(
                        {"query": {"op": "ingest", "t": t}, "got": ack}
                    )
            for request in _queries(args):
                got = client.ask(request)
                got.pop("as_of", None)
                want = _serial_answer(serial, request)
                if got != want:
                    mismatches.append(
                        {"query": request, "got": got, "want": want}
                    )
            client.ask({"op": "shutdown"})
        finally:
            client.close()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
    return {
        "check": "server_exactness",
        "shards": k,
        "steps": args.steps,
        "queries": args.steps + len(_queries(args)),
        "mismatches": mismatches,
        "ok": not mismatches,
    }


# ----------------------------------------------------------------------
def run_conformance(args) -> dict:
    block = make_feed(
        args.steps, args.n_users, args.domain_size, args.feed_seed
    )
    checks = [check_count_exactness(args.shards, args.feed_seed)]
    if args.mode in ("serial", "both"):
        solo = _solo_store(args, block)
        for k in args.shards:
            checks.append(check_serial(args, block, solo, k))
    if args.mode in ("server", "both"):
        for k in args.shards:
            checks.append(check_server(args, block, k))
    report = {
        "config": {
            "method": args.method,
            "oracle": args.oracle,
            "n_users": args.n_users,
            "domain_size": args.domain_size,
            "epsilon": args.epsilon,
            "window": args.window,
            "steps": args.steps,
            "chunk": args.chunk,
            "seed": args.seed,
            "feed_seed": args.feed_seed,
            "shards": args.shards,
            "mode": args.mode,
            "z": args.z,
        },
        "checks": checks,
        "ok": all(c["ok"] for c in checks),
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    parser.add_argument("--mode", choices=["serial", "server", "both"],
                        default="both")
    parser.add_argument("--method", default="LBD")
    parser.add_argument("--oracle", default="grr")
    parser.add_argument("--n-users", type=int, default=96)
    parser.add_argument("--domain-size", type=int, default=8)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--window", type=int, default=6)
    parser.add_argument("--steps", type=int, default=24)
    parser.add_argument("--chunk", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7,
                        help="session master seed")
    parser.add_argument("--feed-seed", type=int, default=51,
                        help="seed of the replayed stream")
    parser.add_argument("--z", type=float, default=8.0,
                        help="statistical tolerance in propagated sigmas")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    report = run_conformance(args)
    for check in report["checks"]:
        label = check["check"]
        shard = check.get("shards", "-")
        status = "ok" if check["ok"] else "FAIL"
        print(f"  {label:<26} shards={shard:<3} {status}")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")
    if not report["ok"]:
        print("conformance FAILED", file=sys.stderr)
        return 1
    print("conformance passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
