"""End-to-end smoke of standing queries in a real ``repro serve``.

The pytest suite pins the standing-query semantics in-process
(``tests/query/test_standing.py``) and against the sharded socket
server (``tests/serving/test_standing_server.py``).  This smoke closes
the last gap CI-side: a real ``repro serve`` **subprocess** speaking
the documented stdin/stdout protocol, with alert lines interleaving
ingest acks on one pipe:

1. feed a deterministic stream (pure function of ``--seed``) with a
   level shift halfway through — items {0, 1} first, {2, 3} after;
2. after the first ``--pre`` ingest lines, register a standing
   threshold that always fires (``threshold(point(0) > -1000000)``)
   and a standing changepoint on the rising item 3;
3. feed the rest, then ask for the registry listing and a one-shot
   batch ``changepoint`` over the standing query's exact span;
4. assert: no error lines, every ingest acked in order, the threshold
   alerted on every post-registration timestamp, and the incremental
   changepoint alert stream equals the batch re-run's alarms.

Run standalone (CI's ``query-dsl`` job does)::

    python tools/standing_smoke.py --seed 0 --out standing_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"

DOMAIN = 4
N_USERS = 80
THRESHOLD_EXPR = "threshold(point(0) > -1000000)"
CHANGEPOINT_EXPR = "changepoint(3, drift=0.0, threshold=0.05)"


def make_feed(seed: int, pre: int, post: int) -> List[str]:
    """Ingest lines with a level shift at ``pre + post//2`` plus the
    standing registrations and the batch-equivalence tail."""
    rng = np.random.default_rng(seed)
    steps = pre + post
    shift = pre + post // 2
    lines = []
    for t in range(steps):
        lo, hi = (0, 2) if t < shift else (2, DOMAIN)
        values = rng.integers(lo, hi, size=N_USERS).tolist()
        lines.append(json.dumps({"op": "ingest", "values": values}))
        if t == pre - 1:
            lines.append(json.dumps({
                "op": "standing", "action": "register", "id": "w",
                "expr": THRESHOLD_EXPR,
            }))
            lines.append(json.dumps({
                "op": "standing", "action": "register", "id": "cp",
                "expr": CHANGEPOINT_EXPR,
            }))
    lines.append(json.dumps({"op": "standing", "action": "list"}))
    lines.append(json.dumps({
        "op": "query",
        "expr": f"{CHANGEPOINT_EXPR} @ {pre}..{steps - 1}",
    }))
    return lines


def serve_command(args: argparse.Namespace) -> List[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--method", args.method,
        "--domain-size", str(DOMAIN),
        "--epsilon", str(args.epsilon),
        "--window", str(args.window),
        "--seed", str(args.seed),
    ]


def run_smoke(args: argparse.Namespace) -> dict:
    feed = make_feed(args.seed, args.pre, args.post)
    env = {**os.environ, "PYTHONPATH": str(REPO_SRC)}
    proc = subprocess.run(
        serve_command(args),
        input="\n".join(feed) + "\n",
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=args.timeout,
    )
    failures: List[str] = []
    if proc.returncode != 0:
        failures.append(
            f"serve exited {proc.returncode}: {proc.stderr[-500:]}"
        )
    lines = [json.loads(raw) for raw in proc.stdout.splitlines()]
    errors = [obj for obj in lines if "error" in obj]
    acks = [obj for obj in lines if "strategy" in obj]
    alerts = [obj for obj in lines if obj.get("event") == "alert"]
    standing = [obj for obj in lines if obj.get("op") == "standing"]
    batch = [obj for obj in lines if obj.get("op") == "changepoint"]

    steps = args.pre + args.post
    if errors:
        failures.append(f"error lines: {errors}")
    if [a["t"] for a in acks] != list(range(steps)):
        failures.append(f"ingest acks out of order: {acks}")
    registered = [s for s in standing if "kind" in s]
    if [s.get("next_t") for s in registered] != [args.pre, args.pre]:
        failures.append(
            f"registrations did not anchor at the watermark: {registered}"
        )
    want_ts = list(range(args.pre, steps))
    got_ts = [a["t"] for a in alerts if a["id"] == "w"]
    if got_ts != want_ts:
        failures.append(
            f"threshold alerts at {got_ts}, wanted every t in {want_ts}"
        )
    cp_ts = [a["t"] for a in alerts if a["id"] == "cp"]
    if len(batch) != 1:
        failures.append(f"expected one batch changepoint answer: {batch}")
    elif cp_ts != batch[0]["alarms"]:
        failures.append(
            f"incremental changepoint alerts {cp_ts} != batch re-run "
            f"alarms {batch[0]['alarms']}"
        )
    elif not cp_ts:
        failures.append("the level shift never alarmed; smoke is inert")
    listing = [s for s in standing if "standing" in s]
    listed_ids = sorted(
        d["id"] for s in listing for d in s["standing"]
    )
    if listed_ids != ["cp", "w"]:
        failures.append(f"registry listing wrong: {listing}")

    return {
        "command": serve_command(args),
        "steps": steps,
        "acks": len(acks),
        "threshold_alerts": len(got_ts),
        "changepoint_alerts": cp_ts,
        "failures": failures,
        "ok": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--method", default="LBD")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--window", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pre", type=int, default=4,
                        help="ingest lines before registration")
    parser.add_argument("--post", type=int, default=8,
                        help="ingest lines after registration")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_smoke(args)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
